package sweep

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"choreo/internal/core"
	"choreo/internal/ilp"
	"choreo/internal/netsim"
	"choreo/internal/obs"
	"choreo/internal/place"
	"choreo/internal/profile"
	"choreo/internal/sweep/backend"
	"choreo/internal/sweep/envcache"
	"choreo/internal/sweep/sequence"
	"choreo/internal/topology"
	"choreo/internal/workload"
)

// Result is one scenario's outcome. Every exported-and-serialized field
// is a pure function of the grid and the seed; the wall-clock placement
// latency is kept out of the JSON encoding so reports stay
// byte-reproducible across runs, worker counts and cache state.
type Result struct {
	Topology  string `json:"topology"`
	Workload  string `json:"workload"`
	Algorithm string `json:"algorithm"`
	Seed      int64  `json:"seed"`
	VMs       int    `json:"vms"`
	// MeanBytes is the swept mean transfer size the cell's workload was
	// generated with (the recorded sizes for trace workloads).
	MeanBytes int64 `json:"meanBytes"`
	// InterarrivalNs, SeqApps and ReevalNs are a sequence cell's swept
	// arrival-process and migration-policy coordinates (mean Poisson
	// interarrival and §2.4 re-evaluation period in nanoseconds;
	// ReevalNs 0 = no re-evaluation). All absent on snapshot cells, so
	// snapshot result lines are byte-identical to what they were before
	// sequence mode existed.
	InterarrivalNs int64 `json:"interarrivalNs,omitempty"`
	SeqApps        int   `json:"seqApps,omitempty"`
	ReevalNs       int64 `json:"reevalNs,omitempty"`
	// Tasks counts the placed tasks: the (combined) application's size
	// in snapshot mode, the whole arrival sequence's total in sequence
	// mode.
	Tasks int `json:"tasks"`
	// CompletionSeconds is the scenario's simulated outcome metric:
	// the application's completion time under this placement in
	// snapshot mode (§6.2's metric, measurement excluded), and the sum
	// of per-application running times in sequence mode (§6.3's
	// total-running metric).
	CompletionSeconds float64 `json:"completionSeconds"`
	// OptimalSeconds is the executed completion time of the exact
	// branch-and-bound optimum (of the predicted objective) on the
	// identical cloud. Nil (absent in JSON) when no reference was
	// computed — the app was too large or the search budget ran out;
	// a present 0 is a real value (the optimum fully colocates).
	OptimalSeconds *float64 `json:"optimalSeconds,omitempty"`
	// Slowdown is CompletionSeconds / OptimalSeconds. 1.0 means the
	// scenario matched the optimum; values slightly below 1 are real
	// (the reference minimizes predicted, not executed, time). Nil
	// when no finite ratio exists: no reference was computed, or the
	// reference is 0 s and the scenario's completion is not.
	Slowdown *float64 `json:"slowdown,omitempty"`
	// PredictedSeconds and MeasuredSeconds record an executed scenario's
	// predicted completion next to the wall clock its flows took as real
	// transfers (live backend with execution on). ErrorPct is
	// 100 × (predicted − measured) / measured — positive means the model
	// over-predicted. All absent on sim and predicted-only rows, so those
	// lines are byte-identical to the pre-execution schema.
	PredictedSeconds *float64 `json:"predictedSeconds,omitempty"`
	MeasuredSeconds  *float64 `json:"measuredSeconds,omitempty"`
	ErrorPct         *float64 `json:"errorPct,omitempty"`
	// Migrations counts the migrations a sequence cell performed across
	// its whole arrival sequence (absent on snapshot cells and on
	// sequence cells that never migrated).
	Migrations int `json:"migrations,omitempty"`
	// Apps holds a sequence cell's per-application event records in
	// arrival order: arrival time, running time, migration count. Absent
	// on snapshot cells.
	Apps []sequence.AppEvent `json:"apps,omitempty"`
	// PlaceLatency is the wall-clock time the placement algorithm took
	// (summed over every arrival's measure+place in sequence mode).
	// Deliberately excluded from JSON: see Grid.Timing.
	PlaceLatency time.Duration `json:"-"`
}

// CellKey is the scenario's content key in the environment cache: the
// deterministic cell seed plus every parameter that shapes the built
// cloud or the placement problem. Scenarios with equal keys form one
// cell group (they differ only in algorithm), which is the unit the
// shard planner strides across machines. Call after Expand, which fills
// the defaulted knobs the key covers.
//
// Non-sim backends also stamp their name and mesh epoch into the key:
// a live measurement belongs to the mesh at the moment it was taken,
// so entries from different backends or epochs never alias. Sim keys
// carry the zero values and are unchanged.
func (g *Grid) CellKey(sc Scenario) envcache.Key {
	key := envcache.Key{
		Topology:     sc.Topology.Name,
		Workload:     sc.Workload.Name,
		CloudSeed:    sc.cloudSeed(),
		VMs:          sc.VMs,
		MeanBytes:    int64(sc.MeanBytes),
		MinTasks:     g.MinTasks,
		MaxTasks:     g.MaxTasks,
		Apps:         g.Apps,
		Interarrival: int64(sc.Interarrival),
		SeqApps:      sc.SeqApps,
	}
	if b := g.backend(); b.Name() != "sim" {
		key.Backend = b.Name()
		key.Epoch = b.MeshEpoch()
	}
	return key
}

// backendCell names the scenario's measurement target for the backend.
func (g *Grid) backendCell(sc Scenario) backend.Cell {
	return backend.Cell{
		Topology: sc.Topology.Name,
		Profile:  sc.Topology.Profile,
		VMs:      sc.VMs,
		Seed:     sc.cloudSeed(),
	}
}

// newOrchestrator builds a fresh simulated cloud from the deterministic
// cell seed: provider fabric, VM allocation and orchestrator. Rebuilding
// from the same seed yields a bit-identical cloud, which is what lets
// the cached measurement be reused while every execution still gets a
// pristine simulator. Sequence cells (which are sim-only) run on it
// directly; snapshot cells measure and execute through the backend.
func (g *Grid) newOrchestrator(sc Scenario, seed int64) (*core.Choreo, error) {
	prov, err := topology.NewProvider(sc.Topology.Profile, seed)
	if err != nil {
		return nil, fmt.Errorf("sweep: %s: %w", sc.Topology.Name, err)
	}
	vms, err := prov.AllocateVMs(sc.VMs)
	if err != nil {
		return nil, fmt.Errorf("sweep: %s: allocating %d VMs: %w", sc.Topology.Name, sc.VMs, err)
	}
	return core.New(netsim.New(prov), vms, rand.New(rand.NewSource(seed+1)), core.Options{Model: g.Model})
}

// buildCell constructs and measures the scenario's environment: the
// backend's measured rate matrix for the cell's cloud, and the
// application to place. This is the expensive, cacheable half of a
// scenario — every algorithm of a cell group (and the optimal
// reference) shares its output. The build and measure spans parent
// under the calling cell's span (stashed in ctx); a live backend's
// cluster.mesh span parents under the measure span the same way.
func (g *Grid) buildCell(ctx context.Context, sc Scenario, ro *runObs) (*envcache.Cell, error) {
	buildStart := time.Now()
	bspan := ro.span(obs.SpanFromContext(ctx), "sweep.build")
	seed := sc.cloudSeed()
	app, err := g.buildApplication(sc, seed)
	if err != nil {
		bspan.End(obs.String("outcome", "error"))
		return nil, err
	}
	measureStart := time.Now()
	mspan := ro.span(bspan, "sweep.measure")
	mctx := ctx
	if mspan.ID() != 0 {
		mctx = obs.ContextWithSpan(ctx, mspan)
	}
	env, err := g.backend().Measure(mctx, g.backendCell(sc))
	if err != nil {
		mspan.End(obs.String("outcome", "error"))
		bspan.End(obs.String("outcome", "error"))
		return nil, fmt.Errorf("sweep: measuring %s: %w", sc.Topology.Name, err)
	}
	mspan.End(obs.String("outcome", "ok"))
	ro.phase("measure", measureStart)
	bspan.End(obs.String("outcome", "ok"))
	ro.phase("build", buildStart)
	return &envcache.Cell{Env: env, App: app}, nil
}

// buildApplication draws (or replays) the scenario's placement problem.
func (g *Grid) buildApplication(sc Scenario, seed int64) (*profile.Application, error) {
	var apps []*profile.Application
	if tr := sc.Workload.Trace; tr != nil {
		all, err := tr.ToApplications()
		if err != nil {
			return nil, err
		}
		n := g.Apps
		if n <= 0 || n > len(all) {
			n = len(all)
		}
		apps = all[:n]
	} else {
		cfg := workload.Config{
			MinTasks:  g.MinTasks,
			MaxTasks:  g.MaxTasks,
			MeanBytes: sc.MeanBytes,
			Patterns:  sc.Workload.Patterns,
		}
		n := g.Apps
		if n <= 0 {
			n = 1
		}
		// The workload rng is offset from the cloud rng so the two
		// streams never alias.
		rng := rand.New(rand.NewSource(seed + 2))
		for i := 0; i < n; i++ {
			app, err := workload.Generate(rng, cfg)
			if err != nil {
				return nil, fmt.Errorf("sweep: generating %s: %w", sc.Workload.Name, err)
			}
			apps = append(apps, app)
		}
	}
	if len(apps) == 1 {
		return apps[0], nil
	}
	combined, _, err := profile.Combine(apps)
	return combined, err
}

// place runs the scenario's placement policy against the measured cell.
// rng drives the Random baseline; it is freshly seeded from the cell
// seed (offset +1, the stream the orchestrator's rng always used) so
// placements are identical across backends, worker counts and cache
// states.
func (g *Grid) place(sc Scenario, cell *envcache.Cell, rng *rand.Rand) (place.Placement, error) {
	if !sc.Algorithm.ILP {
		return core.PlaceWith(cell.App, cell.Env, sc.Algorithm.Core, g.Model, rng)
	}
	in, err := placementInput(cell.App, cell.Env)
	if err != nil {
		return place.Placement{}, err
	}
	prog, err := ilp.BuildPlacement(in)
	if err != nil {
		return place.Placement{}, err
	}
	sol, err := ilp.Solve(prog.Problem, g.OptimalMaxNodes)
	if err != nil {
		return place.Placement{}, fmt.Errorf("sweep: ilp: %w", err)
	}
	machineOf, err := prog.DecodeAssignment(sol)
	if err != nil {
		return place.Placement{}, fmt.Errorf("sweep: ilp: %w", err)
	}
	return place.Placement{MachineOf: machineOf}, nil
}

// placementInput converts a measured environment and application into
// the Appendix program's data.
func placementInput(app *profile.Application, env *place.Environment) (*ilp.PlacementInput, error) {
	j, m := app.Tasks(), env.Machines()
	in := &ilp.PlacementInput{
		BytesB:    make([][]float64, j),
		RateR:     make([][]float64, m),
		CPUDemand: append([]float64(nil), app.CPU...),
		CPUCap:    append([]float64(nil), env.CPUCap...),
	}
	for a := 0; a < j; a++ {
		in.BytesB[a] = make([]float64, j)
		for b := 0; b < j; b++ {
			in.BytesB[a][b] = float64(app.TM.At(a, b))
		}
	}
	for a := 0; a < m; a++ {
		in.RateR[a] = make([]float64, m)
		for b := 0; b < m; b++ {
			in.RateR[a][b] = float64(env.Rates[a][b])
		}
	}
	return in, nil
}

// sequenceParams collects a sequence scenario's cell parameters: the
// swept arrival and re-evaluation coordinates plus the grid's scalar
// migration knobs.
func (g *Grid) sequenceParams(sc Scenario) sequence.Params {
	return sequence.Params{
		Apps:          sc.SeqApps,
		Interarrival:  sc.Interarrival,
		Reeval:        sc.Reeval,
		MigrationGain: g.MigrationGain,
		MaxMigrations: g.MaxMigrations,
	}
}

// buildSequenceCell constructs and measures a sequence scenario's
// environment: a fresh cloud, its pristine packet-train rate matrix (the
// pre-sequence static measurement), and the cell-deterministic arrival
// sequence. Every algorithm and re-evaluation period of the cell group
// shares its output; each run takes a mutable CloneEnv, never the shared
// entry, because sequence runs re-measure mid-flight.
//
// Cells differing only in interarrival or sequence length rebuild a
// bit-identical cloud (cloudSeed excludes those coordinates) but
// generate different arrival sequences, so the cache entry is split:
// the cloud measurement is fetched through the cache's measurement
// sub-layer under Key.MeasurementKey, which those cells share, while
// the generated sequence stays per-cell. A bit-identical cloud is
// therefore never re-measured, and the shared Environment is never
// mutated (runs clone it).
func (g *Grid) buildSequenceCell(sc Scenario, cache *envcache.Cache) (*envcache.Cell, error) {
	seed := sc.cloudSeed()
	cfg := workload.Config{
		MinTasks:  g.MinTasks,
		MaxTasks:  g.MaxTasks,
		MeanBytes: sc.MeanBytes,
		Patterns:  sc.Workload.Patterns,
	}
	// Same rng offset as the snapshot generator, so the workload stream
	// never aliases the cloud stream.
	rng := rand.New(rand.NewSource(seed + 2))
	seq, err := sequence.Generate(rng, cfg, g.sequenceParams(sc))
	if err != nil {
		return nil, fmt.Errorf("sweep: generating %s sequence: %w", sc.Workload.Name, err)
	}
	env, err := cache.GetMeasurement(g.CellKey(sc).MeasurementKey(), func() (*place.Environment, error) {
		orch, err := g.newOrchestrator(sc, seed)
		if err != nil {
			return nil, err
		}
		env, err := orch.MeasureEnvironment()
		if err != nil {
			return nil, fmt.Errorf("sweep: measuring %s: %w", sc.Topology.Name, err)
		}
		return env, nil
	})
	if err != nil {
		return nil, err
	}
	return &envcache.Cell{Env: env, Seq: seq}, nil
}

// runSequenceScenario executes one sequence cell end to end: fetch (or
// build) the measured cell, then play the arrival sequence with the
// scenario's algorithm on a freshly rebuilt cloud — placing each
// application as it arrives under the live cross traffic of the ones
// already running, and migrating when re-evaluation predicts enough
// gain. There is no optimal reference: the §6.3 comparison is
// total running time across algorithms, not slowdown vs. an optimum.
func (g *Grid) runSequenceScenario(ctx context.Context, sc Scenario, cache *envcache.Cache, ro *runObs) (Result, error) {
	buildStart := time.Now()
	bspan := ro.span(obs.SpanFromContext(ctx), "sweep.build")
	cell, err := cache.Get(g.CellKey(sc), func() (*envcache.Cell, error) { return g.buildSequenceCell(sc, cache) })
	if err != nil {
		bspan.End(obs.String("outcome", "error"))
		return Result{}, err
	}
	bspan.End(obs.String("outcome", "ok"))
	ro.phase("build", buildStart)
	exec, err := g.newOrchestrator(sc, sc.cloudSeed())
	if err != nil {
		return Result{}, err
	}
	execStart := time.Now()
	cres, err := sequence.Run(exec, cell.Seq, sc.Algorithm.Core, cell.CloneEnv(), g.sequenceParams(sc))
	ro.phase("execute", execStart)
	if err != nil {
		return Result{}, fmt.Errorf("sweep: sequence %s/%s/%s seed %d: %w",
			sc.Topology.Name, sc.Workload.Name, sc.Algorithm.Name, sc.Seed, err)
	}
	tasks := 0
	for _, app := range cell.Seq {
		tasks += app.Tasks()
	}
	return Result{
		Topology:          sc.Topology.Name,
		Workload:          sc.Workload.Name,
		Algorithm:         sc.Algorithm.Name,
		Seed:              sc.Seed,
		VMs:               sc.VMs,
		MeanBytes:         int64(sc.MeanBytes),
		InterarrivalNs:    int64(sc.Interarrival),
		SeqApps:           sc.SeqApps,
		ReevalNs:          int64(sc.Reeval),
		Tasks:             tasks,
		CompletionSeconds: cres.TotalRunningSeconds,
		Migrations:        cres.Migrations,
		Apps:              cres.Apps,
		PlaceLatency:      cres.PlaceLatency,
	}, nil
}

// runScenario executes one grid cell end to end: fetch (or build) the
// backend-measured environment, place with the scenario's algorithm,
// execute the placement through the backend (simulated byte transfer on
// sim, predicted completion on live), and attach the slowdown-vs-
// optimal reference. Sequence cells dispatch to runSequenceScenario
// instead. A nil cache builds every cell from scratch; for the sim
// backend the result bytes are identical either way.
func (g *Grid) runScenario(ctx context.Context, sc Scenario, cache *envcache.Cache, ro *runObs) (Result, error) {
	if g.Mode == Sequence {
		return g.runSequenceScenario(ctx, sc, cache, ro)
	}
	cell, err := cache.Get(g.CellKey(sc), func() (*envcache.Cell, error) { return g.buildCell(ctx, sc, ro) })
	if err != nil {
		return Result{}, err
	}
	rng := rand.New(rand.NewSource(sc.cloudSeed() + 1))
	pspan := ro.span(obs.SpanFromContext(ctx), "sweep.place",
		obs.String("algorithm", sc.Algorithm.Name))
	start := time.Now()
	p, err := g.place(sc, cell, rng)
	latency := time.Since(start)
	if err != nil {
		pspan.End(obs.String("outcome", "error"))
		return Result{}, fmt.Errorf("sweep: placing %s/%s/%s seed %d: %w",
			sc.Topology.Name, sc.Workload.Name, sc.Algorithm.Name, sc.Seed, err)
	}
	pspan.End(obs.String("outcome", "ok"))
	ro.phaseDur("place", latency)
	execStart := time.Now()
	exec, err := g.backend().Execute(ctx, g.backendCell(sc), cell.App, cell.Env, p, g.Model)
	if err != nil {
		return Result{}, fmt.Errorf("sweep: executing %s/%s/%s seed %d: %w",
			sc.Topology.Name, sc.Workload.Name, sc.Algorithm.Name, sc.Seed, err)
	}
	ro.phase("execute", execStart)

	res := Result{
		Topology:          sc.Topology.Name,
		Workload:          sc.Workload.Name,
		Algorithm:         sc.Algorithm.Name,
		Seed:              sc.Seed,
		VMs:               sc.VMs,
		MeanBytes:         int64(sc.MeanBytes),
		Tasks:             cell.App.Tasks(),
		CompletionSeconds: exec.Completion.Seconds(),
		PlaceLatency:      latency,
	}
	if exec.Executed {
		pred, meas := exec.Predicted.Seconds(), exec.Measured.Seconds()
		res.PredictedSeconds = &pred
		res.MeasuredSeconds = &meas
		if meas > 0 {
			pct := 100 * (pred - meas) / meas
			res.ErrorPct = &pct
		}
		ro.recordAccuracy(sc.Algorithm.Name, sc.Topology.Name, pred, meas)
	}

	if g.OptimalMaxTasks > 0 && cell.App.Tasks() <= g.OptimalMaxTasks {
		var opt float64
		var computed bool
		if sc.Algorithm.Core == core.AlgOptimal && !sc.Algorithm.ILP {
			// The scenario ran the optimum itself: its own completion is
			// the reference.
			opt, computed = res.CompletionSeconds, true
		} else {
			opt, computed, err = cell.OptimalReference(func() (float64, bool, error) {
				return g.computeReference(ctx, sc, cell)
			})
			if err != nil {
				return Result{}, err
			}
		}
		if computed {
			res.OptimalSeconds = &opt
			switch {
			case opt > 0:
				ratio := res.CompletionSeconds / opt
				res.Slowdown = &ratio
			case res.CompletionSeconds == 0:
				// Both placements execute instantly (fully colocated):
				// a tie, not an undefined ratio.
				one := 1.0
				res.Slowdown = &one
			}
			// opt == 0 with a positive completion has no finite ratio;
			// Slowdown stays nil.
		}
	}
	return res, nil
}

// computeReference computes the completion time of the exact optimum —
// the placement minimizing the paper's *predicted* completion-time
// objective — executed through the backend on the identical cloud, so
// every algorithm in a cell group is compared against the identical
// reference. (Because the reference optimizes the prediction, a
// heuristic can occasionally execute faster than it on the simulator;
// slowdowns slightly below 1 are genuine.) The second return reports
// whether a reference was computed at all (branch and bound can exhaust
// its node budget). The value is a pure function of the cell, which is
// what lets Cell.OptimalReference memoize it across the cell group.
func (g *Grid) computeReference(ctx context.Context, sc Scenario, cell *envcache.Cell) (float64, bool, error) {
	p, err := place.Optimal(cell.App, cell.Env, g.Model, g.OptimalMaxNodes)
	if errors.Is(err, place.ErrSearchBudget) {
		// The search ran out of nodes: report no reference rather than
		// a wrong one. Any other failure is real and must surface.
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	exec, err := g.backend().Execute(ctx, g.backendCell(sc), cell.App, cell.Env, p, g.Model)
	if err != nil {
		return 0, false, err
	}
	return exec.Completion.Seconds(), true, nil
}

// RunOptions configures a sweep execution.
type RunOptions struct {
	// Context, when non-nil, is threaded through every backend
	// measurement and execution, so a caller embedding the sweep engine
	// (or a long live run) can cancel in-flight mesh measurements. Nil
	// means context.Background() — the one-shot CLI behaviour.
	Context context.Context
	// Workers is the pool size; <= 0 means GOMAXPROCS.
	Workers int
	// NoCache disables the environment cache: every scenario rebuilds
	// and re-measures its own cloud. Results are byte-identical either
	// way; the knob exists for debugging and for proving exactly that.
	NoCache bool
	// Emit, when non-nil, receives every Result in expansion order, each
	// as soon as it and all its predecessors have completed — the
	// streaming hook the incremental report writer hangs off.
	Emit func(Result) error
	// Include, when non-nil, restricts the run to the expansion indices
	// it returns true for — the hook shard slices hang off. Excluded
	// scenarios are neither executed nor emitted and do not count toward
	// aggregates; included ones still stream in expansion order.
	Include func(i int) bool
	// Prefilled maps expansion indices to results already known from a
	// prior (possibly interrupted) run. Those scenarios are not
	// re-executed; their results flow through Emit and the aggregates at
	// their expansion position exactly as a fresh execution would, so a
	// resumed run reproduces the uninterrupted run's bytes. Entries for
	// indices the run does not include are ignored.
	Prefilled map[int]Result
	// Obs, when non-nil, instruments the run: cell/phase histograms,
	// reorder-buffer depth and worker-utilization gauges in its registry,
	// run/cell/build/measure/place/report spans in its tracer. The
	// emitted result bytes are identical with or without it —
	// TestObservabilityOffDataPath enforces that.
	Obs *obs.Observer
}

// RunStream expands the grid and executes every scenario across the
// worker pool, streaming results through opts.Emit in expansion order
// and aggregating incrementally. Full Results are not retained; what
// still grows with grid size is small and flat — the expanded scenario
// list and a few float64s per scenario for the percentile aggregates —
// so streaming sweeps are bounded by disk long before memory. Returns
// the grid echo, per-algorithm aggregates and cache counters.
func RunStream(g Grid, opts RunOptions) (*Summary, error) {
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	scenarios, err := g.Expand()
	if err != nil {
		return nil, err
	}
	if opts.NoCache && g.backendName() != "sim" {
		// Without the cache every scenario rebuilds its cell, which on a
		// live backend means one full mesh measurement per *algorithm* —
		// N× the measurement traffic, and the algorithms of a cell group
		// would be compared against different (drifted) mesh snapshots,
		// invalidating the per-cell comparison the report implies.
		return nil, fmt.Errorf("sweep: disabling the environment cache is sim-only: the %s backend must measure each cell's mesh exactly once so every algorithm faces the same snapshot", g.backendName())
	}
	// included: the expansion indices this run covers, in order (a shard
	// slice, or the whole grid). toRun drops the prefilled ones — only
	// those execute; prefilled results replay through the same ordered
	// delivery below.
	var included, toRun []int
	counts := make(map[envcache.Key]int)
	for i := range scenarios {
		if opts.Include != nil && !opts.Include(i) {
			continue
		}
		included = append(included, i)
		if _, done := opts.Prefilled[i]; done {
			continue
		}
		toRun = append(toRun, i)
		counts[g.CellKey(scenarios[i])]++
	}
	var cache *envcache.Cache
	if !opts.NoCache {
		// The cache's eviction plan counts each cell's actual fetches in
		// this run, not the full grid's: a shard or resume may touch only
		// part of a cell group, and a uniform per-algorithm count would
		// leave those entries pinned. The last planned fetch evicts, so
		// resident entries track the in-flight set.
		cache = envcache.NewPlanned(counts)
		if g.Mode == Sequence {
			// Measurement sub-layer plan: each cell key built this run
			// fetches its cloud measurement exactly once, so a measurement
			// key's budget is the number of distinct cell keys sharing it —
			// cells differing only in arrival process measure one cloud.
			measCounts := make(map[envcache.Key]int)
			for k := range counts {
				measCounts[k.MeasurementKey()]++
			}
			cache.PlanMeasurements(measCounts)
		}
	}

	ro := newRunObs(opts.Obs)
	ro.registerCacheFuncs(cache)
	wallStart := time.Now()
	ro.start(&g, len(scenarios), opts.Workers)
	outcome := "error"
	defer func() { ro.finish(time.Since(wallStart), outcome) }()

	agg := NewAggregator(g.algorithmNames(), g.Timing)

	// Reorder buffer: workers finish out of order, the stream is emitted
	// in expansion order. rank maps an expansion index to its position
	// in the run's emission sequence (they differ once Include skips
	// indices). Holding completed-but-not-yet-due results in a map
	// bounds its size by worker skew, not grid size — and once the run
	// is doomed (a scenario or the emit destination failed, so the
	// output will be discarded), the buffer is dropped and the rest of
	// the grid skipped rather than simulated into the void.
	rank := make(map[int]int, len(included))
	for pos, i := range included {
		rank[i] = pos
	}
	var mu sync.Mutex
	pending := make(map[int]Result)
	next := 0
	var emitErr error
	var aborted atomic.Bool
	deliver := func(pos int, r Result) {
		mu.Lock()
		defer mu.Unlock()
		if aborted.Load() || emitErr != nil {
			return
		}
		pending[pos] = r
		ro.depth(len(pending))
		for {
			due, ok := pending[next]
			if !ok {
				return
			}
			delete(pending, next)
			ro.depth(len(pending))
			next++
			agg.Add(due)
			if opts.Emit != nil {
				rspan := ro.span(ro.runSpan, "sweep.report", obs.Int("pos", int64(next-1)))
				reportStart := time.Now()
				emitErr = opts.Emit(due)
				ro.phase("report", reportStart)
				if emitErr != nil {
					// The destination is gone (full disk, closed pipe).
					rspan.End(obs.String("outcome", "error"))
					aborted.Store(true)
					pending = nil
					return
				}
				rspan.End(obs.String("outcome", "ok"))
			}
		}
	}

	// Seed the buffer with the prior run's results; leading ones flush
	// to the destination immediately, interleaved ones wait for their
	// predecessors like any other completed-but-not-due result.
	for _, i := range included {
		if r, done := opts.Prefilled[i]; done {
			deliver(rank[i], r)
		}
	}

	err = Parallel(len(toRun), opts.Workers, func(k int) error {
		if aborted.Load() {
			return nil
		}
		i := toRun[k]
		sc := scenarios[i]
		span := ro.cellSpan(sc)
		cctx := ctx
		if span.ID() != 0 {
			cctx = obs.ContextWithSpan(ctx, span)
		}
		cellStart := time.Now()
		r, err := g.runScenario(cctx, sc, cache, ro)
		if err != nil {
			span.End(obs.String("outcome", "error"))
			aborted.Store(true)
			mu.Lock()
			pending = nil
			mu.Unlock()
			return err
		}
		ro.cellDone(time.Since(cellStart))
		span.End(obs.String("outcome", "ok"))
		deliver(rank[i], r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if emitErr != nil {
		return nil, fmt.Errorf("sweep: emitting results: %w", emitErr)
	}
	stats := cache.Stats()
	if stats.Resident != 0 || stats.MeasurementResident != 0 {
		// The per-key plans above make the last fetch of every cell (and
		// of every shared measurement) evict it; anything left resident
		// means the accounting over-counted.
		return nil, fmt.Errorf("sweep: internal: %d environment-cache entries and %d measurements left pinned after the run",
			stats.Resident, stats.MeasurementResident)
	}
	aggs, err := agg.Aggregates()
	if err != nil {
		return nil, err
	}
	outcome = "ok"
	return &Summary{
		Grid:       g.summary(len(scenarios)),
		Algorithms: aggs,
		Cache:      stats,
	}, nil
}

// Run expands the grid and executes every scenario across the worker
// pool, collecting the full per-scenario report in memory (the
// convenient API for modest grids; RunStream is the bounded-memory one).
// The environment cache is on.
func Run(g Grid, workers int) (*Report, error) {
	return RunCollect(g, RunOptions{Workers: workers})
}

// RunCollect is Run with full options: it layers result collection on
// top of RunStream, preserving any caller Emit hook.
func RunCollect(g Grid, opts RunOptions) (*Report, error) {
	var results []Result
	inner := opts.Emit
	opts.Emit = func(r Result) error {
		results = append(results, r)
		if inner != nil {
			return inner(r)
		}
		return nil
	}
	sum, err := RunStream(g, opts)
	if err != nil {
		return nil, err
	}
	return &Report{
		Grid:       sum.Grid,
		Scenarios:  results,
		Algorithms: sum.Algorithms,
		Cache:      sum.Cache,
	}, nil
}
