package sweep

// End-to-end live-mesh sweep tests: the whole path — grid expansion →
// loopback choreo-agent mesh → environment cache → reorder buffer →
// JSONL stream — runs hermetically against real sockets, and the
// resulting report must be schema-compatible with the simulated path
// (same line shapes, same identity machinery, resumable).

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"choreo/internal/sweep/backend"
	"choreo/internal/sweep/backend/livetest"
	"choreo/internal/sweep/envcache"
)

// liveGrid builds a tiny two-cell grid over a live backend: 1 topology
// x 1 workload x 2 algorithms x 2 seeds = 4 scenarios over 2 cells.
func liveGrid(t *testing.T, agents []string) Grid {
	t.Helper()
	live, err := backend.NewLive(backend.LiveConfig{
		Agents:  agents,
		Timeout: 5 * time.Second,
		Train:   livetest.QuickTrain(),
	})
	if err != nil {
		t.Fatal(err)
	}
	g := Grid{
		Backend: live,
		Seeds:   []int64{1, 2},
		VMs:     3,
		// Small apps so the optimal reference is computed and Slowdown
		// populated, like a default sim sweep.
		MinTasks: 3, MaxTasks: 4,
	}
	tp, err := TopologyByName("ec2-2013")
	if err != nil {
		t.Fatal(err)
	}
	g.Topologies = []Topology{tp}
	wl, err := WorkloadByName("shuffle")
	if err != nil {
		t.Fatal(err)
	}
	g.Workloads = []Workload{wl}
	for _, a := range []string{"choreo", "random"} {
		alg, err := AlgorithmByName(a)
		if err != nil {
			t.Fatal(err)
		}
		g.Algorithms = append(g.Algorithms, alg)
	}
	return g
}

// TestLiveSweepStreamsReport drives a full streaming sweep against an
// in-process agent mesh and checks the report end to end: echo carries
// the backend, every cell measured the real mesh exactly once (cache
// threading), result lines carry the snapshot schema, and the JSONL
// round-trips through the resume loader — the same identity machinery
// shards and merges use.
func TestLiveSweepStreamsReport(t *testing.T) {
	mesh, err := livetest.Start(3)
	if err != nil {
		t.Fatal(err)
	}
	defer mesh.Close()
	g := liveGrid(t, mesh.Addrs())

	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	hdr, err := g.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Backend != "live" {
		t.Fatalf("grid echo backend = %q, want live", hdr.Backend)
	}
	if err := sw.Header(hdr); err != nil {
		t.Fatal(err)
	}
	sum, err := RunStream(g, RunOptions{Workers: 4, Emit: sw.Result})
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Finish(sum.Algorithms); err != nil {
		t.Fatal(err)
	}

	// 4 scenarios over 2 cells: the live mesh was measured exactly twice.
	if sum.Cache.Misses != 2 || sum.Cache.Hits != 2 {
		t.Errorf("cache misses/hits = %d/%d, want 2/2 (one mesh measurement per cell)",
			sum.Cache.Misses, sum.Cache.Hits)
	}

	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 1+4+1 {
		t.Fatalf("stream has %d lines, want header + 4 results + aggregates", len(lines))
	}
	for _, ln := range lines[1:5] {
		var res Result
		if err := json.Unmarshal([]byte(ln), &res); err != nil {
			t.Fatalf("bad result line %q: %v", ln, err)
		}
		if res.Topology != "ec2-2013" || res.VMs != 3 || res.Tasks == 0 {
			t.Errorf("result line missing snapshot coordinates: %q", ln)
		}
		if res.CompletionSeconds < 0 {
			t.Errorf("negative completion in %q", ln)
		}
		if res.SeqApps != 0 || res.InterarrivalNs != 0 {
			t.Errorf("live snapshot line carries sequence fields: %q", ln)
		}
		if res.OptimalSeconds == nil || res.Slowdown == nil {
			t.Errorf("live result missing the optimal reference: %q", ln)
		}
		if res.Algorithm == "choreo" && *res.Slowdown != 1.0 {
			// On the live backend both the scenario and the reference are
			// evaluated by the same predicted objective, and greedy's result
			// can only tie or trail the exact optimum.
			if *res.Slowdown < 1.0 {
				t.Errorf("choreo slowdown %v < 1 is impossible under the predicted objective: %q", *res.Slowdown, ln)
			}
		}
	}

	// A live report must resume like any other JSONL report: every line
	// maps back to a scenario identity, and a fully-covered prior means
	// nothing re-runs (so no live mesh is needed for the replay).
	mesh.Close()
	prior, err := loadPriorForTest(t, g, buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(prior) != 4 {
		t.Fatalf("resume recovered %d of 4 scenarios", len(prior))
	}
	var replay bytes.Buffer
	rw := NewStreamWriter(&replay)
	if err := rw.Header(hdr); err != nil {
		t.Fatal(err)
	}
	sum2, err := RunStream(g, RunOptions{Workers: 2, Emit: rw.Result, Prefilled: prior})
	if err != nil {
		t.Fatal(err)
	}
	if err := rw.Finish(sum2.Algorithms); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(replay.Bytes(), buf.Bytes()) {
		t.Error("replaying the live report through -resume did not reproduce its bytes")
	}
}

// TestLiveCellKeysCarryBackendAndEpoch pins the cache-identity rule:
// live cells are keyed by backend name and mesh epoch, so they can
// never alias sim entries or another epoch's measurements.
func TestLiveCellKeysCarryBackendAndEpoch(t *testing.T) {
	mesh, err := livetest.Start(2)
	if err != nil {
		t.Fatal(err)
	}
	defer mesh.Close()
	live, err := backend.NewLive(backend.LiveConfig{
		Agents: mesh.Addrs(),
		Epoch:  99,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := liveGrid(t, mesh.Addrs())
	g.Backend = live
	g.VMs = 2
	scenarios, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	key := g.CellKey(scenarios[0])
	if key.Backend != "live" || key.Epoch != 99 {
		t.Errorf("live cell key = %+v, want Backend live and Epoch 99", key)
	}
	if mk := key.MeasurementKey(); mk != key {
		t.Errorf("live MeasurementKey %+v differs from the cell key %+v: live measurements must never be shared across cells", mk, key)
	}
	simKey := (&Grid{}).CellKey(scenarios[0])
	if simKey.Backend != "" || simKey.Epoch != 0 {
		t.Errorf("sim cell key %+v carries backend identity; sim keys must keep zero values", simKey)
	}
}

// TestLiveSequenceRejected pins the precise error for -mode sequence on
// a live backend.
func TestLiveSequenceRejected(t *testing.T) {
	mesh, err := livetest.Start(2)
	if err != nil {
		t.Fatal(err)
	}
	defer mesh.Close()
	g := liveGrid(t, mesh.Addrs())
	g.Mode = Sequence
	g.VMs = 2
	if _, err := g.Expand(); err == nil || !strings.Contains(err.Error(), "sequence mode is sim-only") {
		t.Errorf("sequence-mode live grid error = %v, want a sequence-is-sim-only error", err)
	}
}

// TestLiveGridCapacityValidated pins grid validation against a fleet
// smaller than the swept VM counts.
func TestLiveGridCapacityValidated(t *testing.T) {
	mesh, err := livetest.Start(2)
	if err != nil {
		t.Fatal(err)
	}
	defer mesh.Close()
	g := liveGrid(t, mesh.Addrs())
	g.VMs = 0
	g.VMCounts = []int{2, 5}
	if _, err := g.Expand(); err == nil || !strings.Contains(err.Error(), "only 2 agents") {
		t.Errorf("over-capacity live grid error = %v, want an only-2-agents error", err)
	}
}

// liveMeasurementNeverShared double-checks the envcache contract the
// live backend relies on, at the cache level: two different live cell
// keys never resolve to one measurement entry even when planned
// together.
func TestLiveMeasurementNeverShared(t *testing.T) {
	a := envcache.Key{Topology: "t", CloudSeed: 1, Backend: "live", Epoch: 1, Interarrival: 5, SeqApps: 2}
	b := a
	b.Interarrival = 9
	if a.MeasurementKey() == b.MeasurementKey() {
		t.Error("live cells differing in arrival process share a measurement key; live clouds drift and must be re-measured")
	}
	sa, sb := a, b
	sa.Backend, sa.Epoch = "", 0
	sb.Backend, sb.Epoch = "", 0
	if sa.MeasurementKey() != sb.MeasurementKey() {
		t.Error("sim cells differing only in arrival process must share a measurement key")
	}
}

// loadPriorForTest round-trips a JSONL report through the resume
// loader without importing the shard package (which would cycle):
// it re-implements the identity match the loader uses, via the same
// exported surfaces the shard package consumes.
func loadPriorForTest(t *testing.T, g Grid, data []byte) (map[int]Result, error) {
	t.Helper()
	scenarios, err := g.Expand()
	if err != nil {
		return nil, err
	}
	type ident struct {
		Topology, Workload, Algorithm string
		Seed                          int64
		VMs                           int
		MeanBytes                     int64
	}
	idx := make(map[ident]int)
	for _, sc := range scenarios {
		idx[ident{sc.Topology.Name, sc.Workload.Name, sc.Algorithm.Name, sc.Seed, sc.VMs, int64(sc.MeanBytes)}] = sc.Index
	}
	out := make(map[int]Result)
	for _, ln := range strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")[1:] {
		var res Result
		if err := json.Unmarshal([]byte(ln), &res); err != nil {
			return nil, err
		}
		if res.Topology == "" {
			continue // aggregates line
		}
		pos, ok := idx[ident{res.Topology, res.Workload, res.Algorithm, res.Seed, res.VMs, res.MeanBytes}]
		if !ok {
			t.Fatalf("line %q matches no scenario", ln)
		}
		out[pos] = res
	}
	return out, nil
}

// TestLiveNoCacheRejected pins the precise error for disabling the
// environment cache on a live backend: every algorithm would re-measure
// the mesh and be compared against a different snapshot.
func TestLiveNoCacheRejected(t *testing.T) {
	mesh, err := livetest.Start(3)
	if err != nil {
		t.Fatal(err)
	}
	defer mesh.Close()
	g := liveGrid(t, mesh.Addrs())
	_, err = RunStream(g, RunOptions{Workers: 2, NoCache: true})
	if err == nil || !strings.Contains(err.Error(), "disabling the environment cache is sim-only") {
		t.Errorf("NoCache live run error = %v, want the cache-is-mandatory error", err)
	}
}
