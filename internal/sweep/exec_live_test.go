package sweep

// Executed-sweep tests: the live backend runs chosen placements as real
// bulk transfers over the loopback mesh, and the stream must carry
// measured-vs-predicted columns, the grid echo must record execution
// (so executed and predicted-only runs never merge), the accuracy
// metrics must populate, and the whole JSONL must round-trip through
// the `choreo obs accuracy` loader.

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"choreo/internal/obs"
	"choreo/internal/sweep/backend"
	"choreo/internal/sweep/backend/livetest"
	"choreo/internal/units"
)

// executedGrid is liveGrid with execution on and transfer sizes small
// enough for loopback CI.
func executedGrid(t *testing.T, agents []string, reg *obs.Registry) Grid {
	t.Helper()
	live, err := backend.NewLive(backend.LiveConfig{
		Agents:  agents,
		Timeout: 10 * time.Second,
		Train:   livetest.QuickTrain(),
		Execute: true,
		Obs:     &obs.Observer{Metrics: reg},
	})
	if err != nil {
		t.Fatal(err)
	}
	g := liveGrid(t, agents)
	g.Backend = live
	g.MeanBytes = 2 * units.Megabyte
	return g
}

func TestExecutedLiveSweepStreamsMeasured(t *testing.T) {
	mesh, err := livetest.Start(3)
	if err != nil {
		t.Fatal(err)
	}
	defer mesh.Close()
	reg := obs.NewRegistry()
	g := executedGrid(t, mesh.Addrs(), reg)

	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	hdr, err := g.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if !hdr.Execute {
		t.Fatal("executed grid echo does not record execute; predicted-only and executed runs would merge")
	}
	if err := sw.Header(hdr); err != nil {
		t.Fatal(err)
	}
	runReg := obs.NewRegistry()
	sum, err := RunStream(g, RunOptions{
		Workers: 2,
		Emit:    sw.Result,
		Obs:     &obs.Observer{Metrics: runReg},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Finish(sum.Algorithms); err != nil {
		t.Fatal(err)
	}

	executed := 0
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	for _, ln := range lines[1 : len(lines)-1] {
		var res Result
		if err := json.Unmarshal([]byte(ln), &res); err != nil {
			t.Fatalf("bad result line %q: %v", ln, err)
		}
		// A fully co-located placement legitimately carries no measured
		// columns; everything else must carry all three, consistently.
		if res.MeasuredSeconds == nil {
			if res.PredictedSeconds != nil || res.ErrorPct != nil {
				t.Errorf("partial measured columns in %q", ln)
			}
			continue
		}
		executed++
		if res.PredictedSeconds == nil || res.ErrorPct == nil {
			t.Fatalf("measured row missing predicted/error columns: %q", ln)
		}
		if *res.MeasuredSeconds <= 0 {
			t.Errorf("measured %v <= 0 in %q", *res.MeasuredSeconds, ln)
		}
		if res.CompletionSeconds != *res.MeasuredSeconds {
			t.Errorf("executed completion %v != measured %v: executed rows report the wall clock", res.CompletionSeconds, *res.MeasuredSeconds)
		}
		wantPct := 100 * (*res.PredictedSeconds - *res.MeasuredSeconds) / *res.MeasuredSeconds
		if diff := *res.ErrorPct - wantPct; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("errorPct %v inconsistent with predicted/measured (want %v)", *res.ErrorPct, wantPct)
		}
	}
	if executed == 0 {
		t.Fatal("no scenario executed any transfer; the random baseline should always spread tasks")
	}

	// The sweep layer must have fed the accuracy plane.
	var promBuf bytes.Buffer
	if err := runReg.WritePrometheus(&promBuf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"choreo_executions_total{", "choreo_prediction_error_ratio_count{"} {
		if !strings.Contains(promBuf.String(), want) {
			t.Errorf("run registry missing %s after an executed sweep", want)
		}
	}

	// And the stream must aggregate through the accuracy loader.
	rep, err := LoadAccuracy(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Executed != executed {
		t.Errorf("LoadAccuracy counted %d executed rows, stream has %d", rep.Executed, executed)
	}
	if len(rep.Algorithms) == 0 {
		t.Fatal("LoadAccuracy produced no per-algorithm summaries")
	}
	if out := rep.Render(); !strings.Contains(out, "prediction error by algorithm") {
		t.Errorf("accuracy render missing the per-algorithm table:\n%s", out)
	}
}

// TestExecutedSweepAgentDeathFailsFast pins the partial-fleet behavior:
// an agent dying under an executed sweep surfaces as a prompt run error
// (with the cell named), never a wedged sweep.
func TestExecutedSweepAgentDeathFailsFast(t *testing.T) {
	mesh, err := livetest.Start(3)
	if err != nil {
		t.Fatal(err)
	}
	defer mesh.Close()
	g := executedGrid(t, mesh.Addrs(), obs.NewRegistry())
	if err := mesh.Kill(2); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := RunStream(g, RunOptions{Workers: 2, Emit: func(Result) error { return nil }})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("executed sweep over a dead agent succeeded")
		}
	case <-time.After(60 * time.Second):
		t.Fatal("executed sweep wedged on a dead agent")
	}
}
