package sweep

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"choreo/internal/units"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenGrid is small enough for CI but still crosses every dimension —
// including a multi-parent fat-tree fabric and a swept transfer size:
// 2 topologies x 2 workloads x 2 sizes x 2 algorithms x 2 seeds =
// 32 scenarios over 16 unique cells.
func goldenGrid() Grid {
	g := Grid{
		Seeds: []int64{1, 2}, VMs: 4, MinTasks: 3, MaxTasks: 4,
		MeanSizes: []units.ByteSize{8 * units.Megabyte, 32 * units.Megabyte},
	}
	for _, name := range []string{"tworack", "fattree-4"} {
		tp, err := TopologyByName(name)
		if err != nil {
			panic(err)
		}
		g.Topologies = append(g.Topologies, tp)
	}
	for _, name := range []string{"skewed", "uniform"} {
		wl, err := WorkloadByName(name)
		if err != nil {
			panic(err)
		}
		g.Workloads = append(g.Workloads, wl)
	}
	for _, name := range []string{"choreo", "round-robin"} {
		alg, err := AlgorithmByName(name)
		if err != nil {
			panic(err)
		}
		g.Algorithms = append(g.Algorithms, alg)
	}
	return g
}

func reportJSONOpts(t *testing.T, g Grid, opts RunOptions) []byte {
	t.Helper()
	rep, err := RunCollect(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func reportJSON(t *testing.T, g Grid, workers int) []byte {
	t.Helper()
	return reportJSONOpts(t, g, RunOptions{Workers: workers})
}

// TestDeterministicAcrossWorkerCountsAndCache is the engine's core
// guarantee: the same grid and seeds produce byte-identical JSON whether
// scenarios run sequentially or spread over eight workers, and whether
// the environment cache serves the cell group or every scenario rebuilds
// its own cloud. Under -race this also shakes out data races in the pool
// and the cache's singleflight path.
func TestDeterministicAcrossWorkerCountsAndCache(t *testing.T) {
	sequential := reportJSON(t, goldenGrid(), 1)
	for _, workers := range []int{2, 8} {
		parallel := reportJSONOpts(t, goldenGrid(), RunOptions{Workers: workers})
		if !bytes.Equal(sequential, parallel) {
			t.Fatalf("report differs between -workers 1 and -workers %d", workers)
		}
	}
	for _, workers := range []int{1, 8} {
		uncached := reportJSONOpts(t, goldenGrid(), RunOptions{Workers: workers, NoCache: true})
		if !bytes.Equal(sequential, uncached) {
			t.Fatalf("report differs between cache on and off at -workers %d", workers)
		}
	}
}

// TestEnvCacheBuildsEachCellOnce proves the cell-group sharing: one
// build-and-measure per unique cell, every other scenario (and the
// optimal reference) served from the cache.
func TestEnvCacheBuildsEachCellOnce(t *testing.T) {
	g := goldenGrid()
	rep, err := RunCollect(g, RunOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	cells := len(g.Topologies) * len(g.Workloads) * len(g.MeanSizes) * len(g.Seeds)
	scenarios := cells * len(g.Algorithms)
	if len(rep.Scenarios) != scenarios {
		t.Fatalf("ran %d scenarios, want %d", len(rep.Scenarios), scenarios)
	}
	if rep.Cache.Misses != int64(cells) {
		t.Errorf("cache built %d cells, want exactly %d (one per unique cloud)", rep.Cache.Misses, cells)
	}
	if want := int64(scenarios - cells); rep.Cache.Hits != want {
		t.Errorf("cache hits = %d, want %d", rep.Cache.Hits, want)
	}
}

// TestStreamWriterDeterministic drives the incremental JSONL pipeline and
// checks the stream bytes are identical across worker counts and cache
// states, and structurally sound (header + one line per scenario +
// aggregates).
func TestStreamWriterDeterministic(t *testing.T) {
	stream := func(workers int, noCache bool) string {
		g := goldenGrid()
		var buf bytes.Buffer
		sw := NewStreamWriter(&buf)
		hdr, err := g.Summary()
		if err != nil {
			t.Fatal(err)
		}
		if err := sw.Header(hdr); err != nil {
			t.Fatal(err)
		}
		sum, err := RunStream(g, RunOptions{Workers: workers, NoCache: noCache, Emit: sw.Result})
		if err != nil {
			t.Fatal(err)
		}
		if err := sw.Finish(sum.Algorithms); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	base := stream(1, false)
	for _, v := range []struct {
		workers int
		noCache bool
	}{{8, false}, {1, true}, {8, true}} {
		if got := stream(v.workers, v.noCache); got != base {
			t.Fatalf("stream differs at workers=%d noCache=%v", v.workers, v.noCache)
		}
	}

	lines := strings.Split(strings.TrimSpace(base), "\n")
	g := goldenGrid()
	scenarios, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if want := len(scenarios) + 2; len(lines) != want {
		t.Fatalf("stream has %d lines, want header + %d scenarios + aggregates", len(lines), len(scenarios))
	}
	if !strings.HasPrefix(lines[0], `{"grid":`) {
		t.Errorf("stream header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], `{"topology":`) {
		t.Errorf("first scenario line = %q", lines[1])
	}
	if !strings.HasPrefix(lines[len(lines)-1], `{"algorithms":`) {
		t.Errorf("aggregates line = %q", lines[len(lines)-1])
	}
	// Scenario lines arrive in expansion order.
	var first Result
	if err := json.Unmarshal([]byte(lines[1]), &first); err != nil {
		t.Fatal(err)
	}
	if first.Topology != scenarios[0].Topology.Name || first.Seed != scenarios[0].Seed {
		t.Errorf("first streamed scenario %s/%d, want %s/%d",
			first.Topology, first.Seed, scenarios[0].Topology.Name, scenarios[0].Seed)
	}
}

func TestGoldenJSONReport(t *testing.T) {
	got := reportJSON(t, goldenGrid(), 4)
	path := filepath.Join("testdata", "golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/sweep -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("report deviates from testdata/golden.json; if the change is intended, regenerate with -update\ngot:\n%s", got)
	}
}

func TestReportShapeAndAggregates(t *testing.T) {
	g := goldenGrid()
	rep, err := Run(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Grid.Scenarios != 32 || len(rep.Scenarios) != 32 {
		t.Fatalf("got %d scenarios, want 32", len(rep.Scenarios))
	}
	if len(rep.Algorithms) != 2 {
		t.Fatalf("got %d aggregates, want 2", len(rep.Algorithms))
	}
	for _, a := range rep.Algorithms {
		if a.Scenarios != 16 {
			t.Errorf("%s aggregate covers %d scenarios, want 16", a.Algorithm, a.Scenarios)
		}
		if a.Completion.N != 16 || a.Completion.Mean <= 0 {
			t.Errorf("%s completion summary looks wrong: %+v", a.Algorithm, a.Completion)
		}
		if a.Slowdown == nil || a.Slowdown.Mean <= 0 {
			t.Errorf("%s has no slowdown summary despite small tasks", a.Algorithm)
		}
		if a.PlaceLatency != nil {
			t.Errorf("%s has latency in JSON aggregates without Timing", a.Algorithm)
		}
	}
	for _, s := range rep.Scenarios {
		// Completion 0 is legitimate: a fully colocated placement
		// executes without touching the network.
		if s.CompletionSeconds < 0 {
			t.Errorf("scenario %s/%s/%s seed %d: completion %v", s.Topology, s.Workload, s.Algorithm, s.Seed, s.CompletionSeconds)
		}
		if s.PlaceLatency <= 0 {
			t.Errorf("scenario %s/%s/%s seed %d: no placement latency recorded", s.Topology, s.Workload, s.Algorithm, s.Seed)
		}
		if s.OptimalSeconds == nil {
			// Every golden-grid app is small enough for branch and
			// bound, so a reference must always have been computed.
			t.Errorf("scenario %s/%s/%s seed %d: no optimal reference", s.Topology, s.Workload, s.Algorithm, s.Seed)
			continue
		}
		switch opt := *s.OptimalSeconds; {
		case opt > 0:
			want := s.CompletionSeconds / opt
			if s.Slowdown == nil {
				t.Errorf("scenario %s/%s/%s seed %d: positive reference but nil slowdown", s.Topology, s.Workload, s.Algorithm, s.Seed)
			} else if diff := *s.Slowdown - want; diff > 1e-12 || diff < -1e-12 {
				t.Errorf("scenario %s/%s/%s seed %d: slowdown %v != completion/optimal %v", s.Topology, s.Workload, s.Algorithm, s.Seed, *s.Slowdown, want)
			}
		case s.CompletionSeconds == 0:
			if s.Slowdown == nil || *s.Slowdown != 1 {
				t.Errorf("scenario %s/%s/%s seed %d: zero-vs-zero should be slowdown 1, got %v", s.Topology, s.Workload, s.Algorithm, s.Seed, s.Slowdown)
			}
		default:
			if s.Slowdown != nil {
				t.Errorf("scenario %s/%s/%s seed %d: infinite ratio should have nil slowdown, got %v", s.Topology, s.Workload, s.Algorithm, s.Seed, *s.Slowdown)
			}
		}
	}
	// Identical cell group => identical optimal reference across algorithms.
	ref := map[string]float64{}
	for _, s := range rep.Scenarios {
		if s.OptimalSeconds == nil {
			continue
		}
		key := fmt.Sprintf("%s/%s/%d/%d/%d", s.Topology, s.Workload, s.VMs, s.MeanBytes, s.Seed)
		if prev, ok := ref[key]; ok && prev != *s.OptimalSeconds {
			t.Errorf("cell %s: optimal reference differs across algorithms (%v vs %v)", key, prev, *s.OptimalSeconds)
		}
		ref[key] = *s.OptimalSeconds
	}
	if !strings.Contains(rep.String(), "choreo") {
		t.Error("String() should mention the algorithms")
	}
}

func TestTimingAddsLatencyAggregates(t *testing.T) {
	g := tinyGrid()
	g.Timing = true
	rep, err := Run(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Algorithms) != 1 || rep.Algorithms[0].PlaceLatency == nil {
		t.Fatal("Timing should populate placement-latency aggregates")
	}
	if rep.Algorithms[0].PlaceLatency.Mean <= 0 {
		t.Error("latency summary should be positive")
	}
}

func TestCSVReport(t *testing.T) {
	rep, err := Run(tinyGrid(), 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+len(rep.Scenarios) {
		t.Fatalf("CSV has %d lines, want header + %d rows", len(lines), len(rep.Scenarios))
	}
	if !strings.HasPrefix(lines[0], "topology,workload,algorithm,seed") {
		t.Errorf("unexpected CSV header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "tworack,skewed,choreo,1,4,") {
		t.Errorf("unexpected CSV row %q", lines[1])
	}
}

// TestEmitErrorAbortsSweep: a dead stream destination must surface as an
// error without the engine simulating the rest of the grid first.
func TestEmitErrorAbortsSweep(t *testing.T) {
	g := goldenGrid()
	boom := fmt.Errorf("disk full")
	emitted := 0
	_, err := RunStream(g, RunOptions{Workers: 4, Emit: func(Result) error {
		emitted++
		return boom
	}})
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("RunStream returned %v, want the emit error", err)
	}
	if emitted != 1 {
		t.Errorf("emit called %d times after failing, want 1", emitted)
	}
}

// TestILPAlgorithmMatchesOptimal runs the Appendix ILP on a tiny cell
// and cross-checks it against the branch-and-bound reference.
func TestILPAlgorithmMatchesOptimal(t *testing.T) {
	if testing.Short() {
		t.Skip("ILP solve is slow in -short mode")
	}
	g := tinyGrid()
	g.VMs = 3
	g.MinTasks = 3
	g.MaxTasks = 3
	ilpAlg, err := AlgorithmByName("ilp")
	if err != nil {
		t.Fatal(err)
	}
	optAlg, err := AlgorithmByName("optimal")
	if err != nil {
		t.Fatal(err)
	}
	g.Algorithms = []Algorithm{ilpAlg, optAlg}
	rep, err := Run(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Scenarios) != 2 {
		t.Fatalf("got %d scenarios", len(rep.Scenarios))
	}
	// Both exact solvers may differ in tie-breaking but not by much in
	// completion time; the ILP minimizes predicted time on the same
	// measured rates.
	a, b := rep.Scenarios[0].CompletionSeconds, rep.Scenarios[1].CompletionSeconds
	if a <= 0 || b <= 0 {
		t.Fatalf("non-positive completion: ilp=%v optimal=%v", a, b)
	}
	if diff := (a - b) / b; diff > 0.25 || diff < -0.25 {
		t.Errorf("ilp completion %v deviates from optimal %v by %.0f%%", a, b, diff*100)
	}
}
