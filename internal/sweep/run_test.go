package sweep

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenGrid is small enough for CI but still crosses every dimension:
// 2 topologies x 2 workloads x 2 algorithms x 2 seeds = 16 scenarios.
func goldenGrid() Grid {
	g := Grid{Seeds: []int64{1, 2}, VMs: 4, MinTasks: 3, MaxTasks: 4}
	for _, name := range []string{"tworack", "dumbbell"} {
		tp, err := TopologyByName(name)
		if err != nil {
			panic(err)
		}
		g.Topologies = append(g.Topologies, tp)
	}
	for _, name := range []string{"skewed", "uniform"} {
		wl, err := WorkloadByName(name)
		if err != nil {
			panic(err)
		}
		g.Workloads = append(g.Workloads, wl)
	}
	for _, name := range []string{"choreo", "round-robin"} {
		alg, err := AlgorithmByName(name)
		if err != nil {
			panic(err)
		}
		g.Algorithms = append(g.Algorithms, alg)
	}
	return g
}

func reportJSON(t *testing.T, g Grid, workers int) []byte {
	t.Helper()
	rep, err := Run(g, workers)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDeterministicAcrossWorkerCounts is the engine's core guarantee:
// the same grid and seeds produce byte-identical JSON whether scenarios
// run sequentially or spread over eight workers. Under -race this also
// shakes out data races in the pool.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	g := goldenGrid()
	sequential := reportJSON(t, g, 1)
	for _, workers := range []int{2, 8} {
		parallel := reportJSON(t, goldenGrid(), workers)
		if !bytes.Equal(sequential, parallel) {
			t.Fatalf("report differs between -workers 1 and -workers %d", workers)
		}
	}
}

func TestGoldenJSONReport(t *testing.T) {
	got := reportJSON(t, goldenGrid(), 4)
	path := filepath.Join("testdata", "golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/sweep -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("report deviates from testdata/golden.json; if the change is intended, regenerate with -update\ngot:\n%s", got)
	}
}

func TestReportShapeAndAggregates(t *testing.T) {
	g := goldenGrid()
	rep, err := Run(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Grid.Scenarios != 16 || len(rep.Scenarios) != 16 {
		t.Fatalf("got %d scenarios, want 16", len(rep.Scenarios))
	}
	if len(rep.Algorithms) != 2 {
		t.Fatalf("got %d aggregates, want 2", len(rep.Algorithms))
	}
	for _, a := range rep.Algorithms {
		if a.Scenarios != 8 {
			t.Errorf("%s aggregate covers %d scenarios, want 8", a.Algorithm, a.Scenarios)
		}
		if a.Completion.N != 8 || a.Completion.Mean <= 0 {
			t.Errorf("%s completion summary looks wrong: %+v", a.Algorithm, a.Completion)
		}
		if a.Slowdown == nil || a.Slowdown.Mean <= 0 {
			t.Errorf("%s has no slowdown summary despite small tasks", a.Algorithm)
		}
		if a.PlaceLatency != nil {
			t.Errorf("%s has latency in JSON aggregates without Timing", a.Algorithm)
		}
	}
	for _, s := range rep.Scenarios {
		// Completion 0 is legitimate: a fully colocated placement
		// executes without touching the network.
		if s.CompletionSeconds < 0 {
			t.Errorf("scenario %s/%s/%s seed %d: completion %v", s.Topology, s.Workload, s.Algorithm, s.Seed, s.CompletionSeconds)
		}
		if s.PlaceLatency <= 0 {
			t.Errorf("scenario %s/%s/%s seed %d: no placement latency recorded", s.Topology, s.Workload, s.Algorithm, s.Seed)
		}
		if s.OptimalSeconds == nil {
			// Every golden-grid app is small enough for branch and
			// bound, so a reference must always have been computed.
			t.Errorf("scenario %s/%s/%s seed %d: no optimal reference", s.Topology, s.Workload, s.Algorithm, s.Seed)
			continue
		}
		switch opt := *s.OptimalSeconds; {
		case opt > 0:
			want := s.CompletionSeconds / opt
			if s.Slowdown == nil {
				t.Errorf("scenario %s/%s/%s seed %d: positive reference but nil slowdown", s.Topology, s.Workload, s.Algorithm, s.Seed)
			} else if diff := *s.Slowdown - want; diff > 1e-12 || diff < -1e-12 {
				t.Errorf("scenario %s/%s/%s seed %d: slowdown %v != completion/optimal %v", s.Topology, s.Workload, s.Algorithm, s.Seed, *s.Slowdown, want)
			}
		case s.CompletionSeconds == 0:
			if s.Slowdown == nil || *s.Slowdown != 1 {
				t.Errorf("scenario %s/%s/%s seed %d: zero-vs-zero should be slowdown 1, got %v", s.Topology, s.Workload, s.Algorithm, s.Seed, s.Slowdown)
			}
		default:
			if s.Slowdown != nil {
				t.Errorf("scenario %s/%s/%s seed %d: infinite ratio should have nil slowdown, got %v", s.Topology, s.Workload, s.Algorithm, s.Seed, *s.Slowdown)
			}
		}
	}
	// Identical cell group => identical optimal reference across algorithms.
	ref := map[string]float64{}
	for _, s := range rep.Scenarios {
		if s.OptimalSeconds == nil {
			continue
		}
		key := fmt.Sprintf("%s/%s/%d", s.Topology, s.Workload, s.Seed)
		if prev, ok := ref[key]; ok && prev != *s.OptimalSeconds {
			t.Errorf("cell %s: optimal reference differs across algorithms (%v vs %v)", key, prev, *s.OptimalSeconds)
		}
		ref[key] = *s.OptimalSeconds
	}
	if !strings.Contains(rep.String(), "choreo") {
		t.Error("String() should mention the algorithms")
	}
}

func TestTimingAddsLatencyAggregates(t *testing.T) {
	g := tinyGrid()
	g.Timing = true
	rep, err := Run(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Algorithms) != 1 || rep.Algorithms[0].PlaceLatency == nil {
		t.Fatal("Timing should populate placement-latency aggregates")
	}
	if rep.Algorithms[0].PlaceLatency.Mean <= 0 {
		t.Error("latency summary should be positive")
	}
}

func TestCSVReport(t *testing.T) {
	rep, err := Run(tinyGrid(), 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+len(rep.Scenarios) {
		t.Fatalf("CSV has %d lines, want header + %d rows", len(lines), len(rep.Scenarios))
	}
	if !strings.HasPrefix(lines[0], "topology,workload,algorithm,seed") {
		t.Errorf("unexpected CSV header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "tworack,skewed,choreo,1,4,") {
		t.Errorf("unexpected CSV row %q", lines[1])
	}
}

// TestILPAlgorithmMatchesOptimal runs the Appendix ILP on a tiny cell
// and cross-checks it against the branch-and-bound reference.
func TestILPAlgorithmMatchesOptimal(t *testing.T) {
	if testing.Short() {
		t.Skip("ILP solve is slow in -short mode")
	}
	g := tinyGrid()
	g.VMs = 3
	g.MinTasks = 3
	g.MaxTasks = 3
	ilpAlg, err := AlgorithmByName("ilp")
	if err != nil {
		t.Fatal(err)
	}
	optAlg, err := AlgorithmByName("optimal")
	if err != nil {
		t.Fatal(err)
	}
	g.Algorithms = []Algorithm{ilpAlg, optAlg}
	rep, err := Run(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Scenarios) != 2 {
		t.Fatalf("got %d scenarios", len(rep.Scenarios))
	}
	// Both exact solvers may differ in tie-breaking but not by much in
	// completion time; the ILP minimizes predicted time on the same
	// measured rates.
	a, b := rep.Scenarios[0].CompletionSeconds, rep.Scenarios[1].CompletionSeconds
	if a <= 0 || b <= 0 {
		t.Fatalf("non-positive completion: ilp=%v optimal=%v", a, b)
	}
	if diff := (a - b) / b; diff > 0.25 || diff < -0.25 {
		t.Errorf("ilp completion %v deviates from optimal %v by %.0f%%", a, b, diff*100)
	}
}
