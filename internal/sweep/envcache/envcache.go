// Package envcache memoizes built-and-measured scenario environments for
// the sweep engine. A sweep grid crosses every cell (topology × workload ×
// VM count × transfer size × seed) with N placement algorithms, and the
// exact-optimum reference visits the cell once more — but the cell's
// simulated cloud, its measured rate matrix and its generated application
// are a pure function of the cell's content key, not of the algorithm.
// Caching them turns N+1 expensive build-and-measure passes per cell into
// one, without touching the determinism guarantee: a cache hit returns
// bit-identical data to what a rebuild would produce, so reports are
// byte-identical with the cache on or off.
//
// The cache is content-keyed (Key carries every input that shapes the
// cloud or the application), singleflight (concurrent workers asking for
// the same cell block on one build), and self-evicting (the caller
// declares how many times each cell will be used; the last use releases
// the entry, bounding memory to the in-flight working set on large
// streaming sweeps).
//
// The use declaration comes in two forms. New(n) plans a uniform n
// fetches for every key — right for a full sweep, where every cell is
// visited once per algorithm. NewPlanned(uses) plans an exact per-key
// count — required for partial runs (a shard holding only part of a
// cell group, or a resume that re-runs a subset of a cell's
// algorithms), where a uniform count would either leave entries pinned
// forever or evict them before their last use.
package envcache

import (
	"sync"
	"sync/atomic"

	"choreo/internal/place"
	"choreo/internal/profile"
)

// Key identifies one unique scenario environment: the deterministic cell
// seed plus every topology, allocation and workload parameter that shapes
// the built cloud or the placement problem. Two scenarios with equal keys
// share a bit-identical environment.
type Key struct {
	Topology  string
	Workload  string
	CloudSeed int64
	VMs       int
	MeanBytes int64
	MinTasks  int
	MaxTasks  int
	Apps      int
	// Interarrival and SeqApps identify a sequence-mode cell's arrival
	// process (mean inter-arrival in nanoseconds, applications per
	// sequence); both are zero for snapshot cells. The re-evaluation
	// period is deliberately absent: it changes only how a sequence is
	// run, not the built cloud or the generated arrivals, so cells
	// differing only in re-evaluation share one entry.
	Interarrival int64
	SeqApps      int
	// Backend and Epoch identify the measurement plane. Both are zero
	// values for the simulated backend, whose measurements are pure
	// functions of the key, so sim keys (and hence all pre-backend cache
	// behaviour) are unchanged. Live backends set Backend to their name
	// and Epoch to their mesh epoch: a real cloud drifts between
	// measurements, so entries from different epochs — or from sim and
	// live runs of the same coordinates — are never conflated.
	Backend string
	Epoch   int64
}

// MeasurementKey derives the key of the cell's cloud measurement — the
// expensive packet-train half of a cell build. Simulated sequence cells
// that differ only in their arrival process (interarrival, sequence
// length) rebuild a bit-identical cloud, so their measurement is shared
// by dropping those coordinates from the key. Live measurements are
// never shared across cells: the real cloud drifts, so the full cell
// key (epoch included) stays the measurement's identity.
func (k Key) MeasurementKey() Key {
	if k.Backend != "" {
		return k
	}
	k.Interarrival, k.SeqApps = 0, 0
	return k
}

// Cell is one built-and-measured scenario environment: the measured rate
// matrix and the placement problem — a single application for snapshot
// cells, a Start-ordered arrival sequence for sequence cells. Env and the
// applications are treated as immutable by snapshot consumers (placement
// algorithms read them; execution happens on a freshly rebuilt cloud);
// sequence consumers re-measure mid-run, so they take a mutable CloneEnv
// instead of aliasing the shared entry. The exact-optimum reference
// completion is memoized here too, so the N algorithms of a cell group
// compute it once.
type Cell struct {
	Env *place.Environment
	App *profile.Application
	// Seq holds a sequence cell's generated applications in arrival
	// order (nil for snapshot cells). Consumers must not mutate them.
	Seq []*profile.Application

	refOnce sync.Once
	refVal  float64
	refOK   bool
	refErr  error
}

// CloneEnv returns a deep copy of the cell's measured environment.
// Sequence cells re-measure under live cross traffic and must not share
// one Environment across the concurrently-running algorithms of a cell
// group, so the cache hands out mutable clones rather than the shared
// entry.
func (c *Cell) CloneEnv() *place.Environment {
	return c.Env.Clone()
}

// OptimalReference returns the memoized exact-optimum reference,
// computing it with compute on first call. compute's result must be a
// pure function of the cell (it is: the reference minimizes the predicted
// objective over Env and executes on a cloud rebuilt from the cell seed),
// so whichever scenario gets here first stores what every other scenario
// would have computed.
func (c *Cell) OptimalReference(compute func() (float64, bool, error)) (float64, bool, error) {
	c.refOnce.Do(func() {
		c.refVal, c.refOK, c.refErr = compute()
	})
	return c.refVal, c.refOK, c.refErr
}

// Stats counts cache traffic. Misses is the number of cells actually
// built; a sweep over U unique cells with S scenarios proves the sharing
// worked when Misses == U and Hits == S - U. Resident is the number of
// entries still cached when the snapshot was taken: a finished
// refcounted run must report zero, so a non-zero value means the use
// plan over-counted and pinned memory. The Measurement counters track
// the measurement sub-layer (GetMeasurement): MeasurementMisses is the
// number of clouds actually measured, and a sequence sweep whose cells
// differ only in arrival process proves the sharing worked when it is
// smaller than the cell-level Misses.
type Stats struct {
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	Resident int   `json:"resident"`

	MeasurementHits     int64 `json:"measurementHits,omitempty"`
	MeasurementMisses   int64 `json:"measurementMisses,omitempty"`
	MeasurementResident int   `json:"measurementResident,omitempty"`

	// Evictions counts entries released by their last planned fetch.
	// Excluded from JSON on purpose: Stats is serialized into sweep
	// reports, whose bytes are pinned by goldens — these counters feed
	// the obs registry only.
	Evictions            int64 `json:"-"`
	MeasurementEvictions int64 `json:"-"`
}

// entry is one cached cell with its build-once latch and remaining-use
// count.
type entry struct {
	once      sync.Once
	cell      *Cell
	err       error
	remaining int
}

// measEntry is one cached cloud measurement with its build-once latch
// and remaining-use count — the measurement sub-layer's analogue of
// entry.
type measEntry struct {
	once      sync.Once
	env       *place.Environment
	err       error
	remaining int
}

// Cache is a concurrency-safe, content-keyed cell cache.
type Cache struct {
	mu      sync.Mutex
	entries map[Key]*entry
	uses    int
	planned map[Key]int
	hits    atomic.Int64
	misses  atomic.Int64

	// Measurement sub-layer: the per-cloud measurement half of a cell
	// build, shared across cell keys whose MeasurementKey agrees (see
	// Key.MeasurementKey). Populated only when PlanMeasurements declared
	// a plan; unplanned measurement keys build on every fetch.
	measEntries map[Key]*measEntry
	measPlanned map[Key]int
	measHits    atomic.Int64
	measMisses  atomic.Int64

	evictions     atomic.Int64
	measEvictions atomic.Int64
}

// New returns a cache expecting every key to be fetched usesPerKey times;
// the last fetch evicts the entry. usesPerKey <= 0 disables eviction
// (entries live for the cache's lifetime).
func New(usesPerKey int) *Cache {
	return &Cache{entries: make(map[Key]*entry), uses: usesPerKey}
}

// NewPlanned returns a cache with an exact per-key use plan: key k will
// be fetched uses[k] times, and its k-th fetch evicts the entry. Keys
// outside the plan are built on every fetch and never cached (each such
// fetch counts as a miss). This is the accounting a partial run needs —
// a shard or resume whose scenario subset touches some cells fewer
// times than the full grid would must neither pin those entries forever
// nor evict them early.
func NewPlanned(uses map[Key]int) *Cache {
	planned := make(map[Key]int, len(uses))
	for k, n := range uses {
		planned[k] = n
	}
	return &Cache{entries: make(map[Key]*entry), planned: planned}
}

// expectedUses is the declared fetch budget for key; 0 under a per-key
// plan means the key is unplanned.
func (c *Cache) expectedUses(key Key) int {
	if c.planned != nil {
		return c.planned[key]
	}
	return c.uses
}

// refcounted reports whether fetches consume a declared budget. Uniform
// caches with usesPerKey <= 0 pin entries forever; planned caches always
// refcount.
func (c *Cache) refcounted() bool {
	return c.planned != nil || c.uses > 0
}

// Get returns the cell for key, building it with build on first request.
// Concurrent Gets for the same key share a single build; errors are
// shared with every waiter. A nil *Cache is valid and simply builds every
// time (the cache-disabled path), counting nothing.
func (c *Cache) Get(key Key, build func() (*Cell, error)) (*Cell, error) {
	if c == nil {
		return build()
	}
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &entry{remaining: c.expectedUses(key)}
		c.entries[key] = e
		c.misses.Add(1)
	} else {
		c.hits.Add(1)
	}
	if c.refcounted() {
		e.remaining--
		if e.remaining <= 0 {
			delete(c.entries, key)
			c.evictions.Add(1)
		}
	}
	c.mu.Unlock()

	e.once.Do(func() {
		e.cell, e.err = build()
	})
	return e.cell, e.err
}

// PlanMeasurements declares the measurement sub-layer's per-key use
// plan: measurement key k will be fetched uses[k] times (once per
// distinct cell key sharing it that this run actually builds), and its
// last fetch evicts the entry. Call before the first GetMeasurement;
// with no plan, every fetch builds. Safe (a no-op) on a nil cache.
func (c *Cache) PlanMeasurements(uses map[Key]int) {
	if c == nil || len(uses) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.measEntries = make(map[Key]*measEntry)
	c.measPlanned = make(map[Key]int, len(uses))
	for k, n := range uses {
		c.measPlanned[k] = n
	}
}

// GetMeasurement returns the cloud measurement for key (derive it with
// Key.MeasurementKey), building it with build on first request. Cell
// builders call it from inside their Get build function, so the N cell
// keys sharing one measurement key measure the cloud exactly once.
// Consumers must treat the returned environment as immutable — mutating
// runs take a Clone (see Cell.CloneEnv). A nil *Cache, or a cache with
// no measurement plan for key, builds every time.
func (c *Cache) GetMeasurement(key Key, build func() (*place.Environment, error)) (*place.Environment, error) {
	if c == nil {
		return build()
	}
	c.mu.Lock()
	if c.measPlanned[key] == 0 {
		c.mu.Unlock()
		c.measMisses.Add(1)
		return build()
	}
	e, ok := c.measEntries[key]
	if !ok {
		e = &measEntry{remaining: c.measPlanned[key]}
		c.measEntries[key] = e
		c.measMisses.Add(1)
	} else {
		c.measHits.Add(1)
	}
	e.remaining--
	if e.remaining <= 0 {
		delete(c.measEntries, key)
		c.measEvictions.Add(1)
	}
	c.mu.Unlock()

	e.once.Do(func() {
		e.env, e.err = build()
	})
	return e.env, e.err
}

// Stats returns the cumulative hit/miss counters (they survive eviction)
// plus a snapshot of the resident entry counts, for both the cell layer
// and the measurement sub-layer. Safe on a nil cache, which reports
// zeros.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	measResident := len(c.measEntries)
	c.mu.Unlock()
	return Stats{
		Hits: c.hits.Load(), Misses: c.misses.Load(), Resident: c.Len(),
		MeasurementHits:      c.measHits.Load(),
		MeasurementMisses:    c.measMisses.Load(),
		MeasurementResident:  measResident,
		Evictions:            c.evictions.Load(),
		MeasurementEvictions: c.measEvictions.Load(),
	}
}

// Len reports the number of currently resident entries (for tests: with
// eviction on, a finished sweep should leave zero).
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
