package envcache

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"choreo/internal/place"
)

func key(seed int64) Key {
	return Key{Topology: "t", Workload: "w", CloudSeed: seed, VMs: 4, MeanBytes: 1 << 20, MinTasks: 3, MaxTasks: 4}
}

func TestSingleflightBuildsOnce(t *testing.T) {
	c := New(0)
	var builds atomic.Int64
	var wg sync.WaitGroup
	cells := make([]*Cell, 16)
	for i := range cells {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cell, err := c.Get(key(1), func() (*Cell, error) {
				builds.Add(1)
				return &Cell{}, nil
			})
			if err != nil {
				t.Error(err)
			}
			cells[i] = cell
		}(i)
	}
	wg.Wait()
	if builds.Load() != 1 {
		t.Fatalf("16 concurrent Gets built %d times, want 1", builds.Load())
	}
	for i := 1; i < len(cells); i++ {
		if cells[i] != cells[0] {
			t.Fatal("concurrent Gets returned different cells")
		}
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != 15 {
		t.Errorf("stats = %+v, want 1 miss / 15 hits", s)
	}
}

func TestDistinctKeysBuildSeparately(t *testing.T) {
	c := New(0)
	var builds atomic.Int64
	build := func() (*Cell, error) { builds.Add(1); return &Cell{}, nil }
	for seed := int64(1); seed <= 3; seed++ {
		if _, err := c.Get(key(seed), build); err != nil {
			t.Fatal(err)
		}
	}
	if builds.Load() != 3 {
		t.Errorf("3 distinct keys built %d times", builds.Load())
	}
}

func TestEvictionAfterDeclaredUses(t *testing.T) {
	c := New(2)
	var builds atomic.Int64
	build := func() (*Cell, error) { builds.Add(1); return &Cell{}, nil }
	for i := 0; i < 2; i++ {
		if _, err := c.Get(key(1), build); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 0 {
		t.Fatalf("entry should be evicted after its 2 declared uses, %d resident", c.Len())
	}
	// A use beyond the declaration rebuilds (counts as a miss).
	if _, err := c.Get(key(1), build); err != nil {
		t.Fatal(err)
	}
	if builds.Load() != 2 {
		t.Errorf("post-eviction Get should rebuild: %d builds", builds.Load())
	}
	s := c.Stats()
	if s.Misses != 2 || s.Hits != 1 {
		t.Errorf("stats = %+v, want 2 misses / 1 hit", s)
	}
}

// TestPlannedUsesEvictExactly is the partial-cell-group accounting: a
// shard or resume fetches some keys fewer times than the full grid
// would, and the per-key plan must release each entry on exactly its
// last planned fetch — nothing pinned, nothing evicted early.
func TestPlannedUsesEvictExactly(t *testing.T) {
	c := NewPlanned(map[Key]int{key(1): 3, key(2): 1})
	var builds atomic.Int64
	build := func() (*Cell, error) { builds.Add(1); return &Cell{}, nil }

	for i := 0; i < 2; i++ {
		if _, err := c.Get(key(1), build); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 1 {
		t.Fatalf("key with 1 of 3 planned uses left must stay resident, Len = %d", c.Len())
	}
	if _, err := c.Get(key(1), build); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(key(2), build); err != nil {
		t.Fatal(err)
	}
	if builds.Load() != 2 {
		t.Errorf("2 planned keys built %d times, want 2", builds.Load())
	}
	if c.Len() != 0 {
		t.Errorf("all planned uses consumed, yet %d entries still resident (pinned)", c.Len())
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 2 || s.Resident != 0 {
		t.Errorf("stats = %+v, want 2 hits / 2 misses / 0 resident", s)
	}
}

// TestPlannedUnplannedKeyNeverCached: a fetch outside the plan builds
// every time and leaves nothing resident, rather than corrupting the
// accounting of planned entries.
func TestPlannedUnplannedKeyNeverCached(t *testing.T) {
	c := NewPlanned(map[Key]int{key(1): 1})
	var builds atomic.Int64
	build := func() (*Cell, error) { builds.Add(1); return &Cell{}, nil }
	for i := 0; i < 2; i++ {
		if _, err := c.Get(key(9), build); err != nil {
			t.Fatal(err)
		}
	}
	if builds.Load() != 2 {
		t.Errorf("unplanned key built %d times, want 2 (never cached)", builds.Load())
	}
	if c.Len() != 0 {
		t.Errorf("unplanned key left %d entries resident", c.Len())
	}
}

// TestUniformCountPinsPartialGroup documents why partial runs need the
// per-key plan: a uniform declaration over-counts keys the run touches
// fewer times, leaving them resident (pinned) at the end.
func TestUniformCountPinsPartialGroup(t *testing.T) {
	uniform := New(3)
	build := func() (*Cell, error) { return &Cell{}, nil }
	if _, err := uniform.Get(key(1), build); err != nil {
		t.Fatal(err)
	}
	if uniform.Len() != 1 {
		t.Fatalf("uniform cache after partial group: Len = %d, want 1 (pinned)", uniform.Len())
	}
	if s := uniform.Stats(); s.Resident != 1 {
		t.Errorf("Stats.Resident = %d, want 1 to expose the pin", s.Resident)
	}
	planned := NewPlanned(map[Key]int{key(1): 1})
	if _, err := planned.Get(key(1), build); err != nil {
		t.Fatal(err)
	}
	if planned.Len() != 0 {
		t.Errorf("planned cache after partial group: Len = %d, want 0", planned.Len())
	}
}

func TestNilCacheBuildsEveryTime(t *testing.T) {
	var c *Cache
	var builds atomic.Int64
	for i := 0; i < 3; i++ {
		if _, err := c.Get(key(1), func() (*Cell, error) { builds.Add(1); return &Cell{}, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if builds.Load() != 3 {
		t.Errorf("nil cache built %d times, want 3", builds.Load())
	}
	if s := c.Stats(); s != (Stats{}) {
		t.Errorf("nil cache stats = %+v", s)
	}
	if c.Len() != 0 {
		t.Errorf("nil cache Len = %d", c.Len())
	}
}

func TestBuildErrorShared(t *testing.T) {
	c := New(0)
	boom := errors.New("boom")
	if _, err := c.Get(key(9), func() (*Cell, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("got %v, want the build error", err)
	}
	// Later Gets observe the same (cached) failure rather than rebuilding:
	// the cell is deterministic, so retrying cannot succeed.
	if _, err := c.Get(key(9), func() (*Cell, error) { t.Fatal("rebuilt"); return nil, nil }); !errors.Is(err, boom) {
		t.Fatalf("got %v, want the shared build error", err)
	}
}

func TestOptimalReferenceMemoized(t *testing.T) {
	cell := &Cell{}
	var computes atomic.Int64
	for i := 0; i < 4; i++ {
		v, ok, err := cell.OptimalReference(func() (float64, bool, error) {
			computes.Add(1)
			return 42, true, nil
		})
		if err != nil || !ok || v != 42 {
			t.Fatalf("reference = %v %v %v", v, ok, err)
		}
	}
	if computes.Load() != 1 {
		t.Errorf("reference computed %d times, want 1", computes.Load())
	}
}

// TestMeasurementKeyStripsArrivalProcess pins which coordinates the
// measurement sub-key drops: sim cells differing only in arrival
// process share one measured cloud, everything else stays distinct.
func TestMeasurementKeyStripsArrivalProcess(t *testing.T) {
	a := Key{Topology: "t", Workload: "w", CloudSeed: 9, VMs: 4, Interarrival: 5, SeqApps: 8}
	b := a
	b.Interarrival, b.SeqApps = 30, 12
	if a.MeasurementKey() != b.MeasurementKey() {
		t.Error("cells differing only in arrival process do not share a measurement key")
	}
	c := a
	c.CloudSeed = 10
	if a.MeasurementKey() == c.MeasurementKey() {
		t.Error("cells with different clouds share a measurement key")
	}
}

// TestGetMeasurementSharesAndEvicts drives the measurement sub-layer
// the way two sequence cell builds would: one build for the shared
// cloud, eviction after the planned last fetch, and build-every-time
// for unplanned keys and the nil cache.
func TestGetMeasurementSharesAndEvicts(t *testing.T) {
	cellA := Key{Topology: "t", CloudSeed: 1, Interarrival: 5, SeqApps: 4}
	cellB := Key{Topology: "t", CloudSeed: 1, Interarrival: 9, SeqApps: 4}
	mk := cellA.MeasurementKey()
	if mk != cellB.MeasurementKey() {
		t.Fatal("test cells must share a measurement key")
	}

	c := NewPlanned(map[Key]int{cellA: 2, cellB: 2})
	c.PlanMeasurements(map[Key]int{mk: 2})
	builds := 0
	build := func() (*place.Environment, error) {
		builds++
		return &place.Environment{CPUCap: []float64{4}}, nil
	}
	envA, err := c.GetMeasurement(mk, build)
	if err != nil {
		t.Fatal(err)
	}
	envB, err := c.GetMeasurement(mk, build)
	if err != nil {
		t.Fatal(err)
	}
	if builds != 1 {
		t.Errorf("built %d measurements, want 1", builds)
	}
	if envA != envB {
		t.Error("second fetch did not return the shared environment")
	}
	s := c.Stats()
	if s.MeasurementMisses != 1 || s.MeasurementHits != 1 {
		t.Errorf("measurement misses/hits = %d/%d, want 1/1", s.MeasurementMisses, s.MeasurementHits)
	}
	if s.MeasurementResident != 0 {
		t.Errorf("measurement entries resident after last planned fetch = %d, want 0", s.MeasurementResident)
	}

	// Unplanned key: builds every time, counted as misses.
	other := Key{Topology: "other"}
	if _, err := c.GetMeasurement(other, build); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetMeasurement(other, build); err != nil {
		t.Fatal(err)
	}
	if builds != 3 {
		t.Errorf("unplanned key built %d times total, want 3", builds)
	}

	// Nil cache: always builds.
	var nilCache *Cache
	if _, err := nilCache.GetMeasurement(mk, build); err != nil {
		t.Fatal(err)
	}
	if builds != 4 {
		t.Errorf("nil cache built %d times total, want 4", builds)
	}
}

// TestGetMeasurementSharesErrors checks a failed measurement build is
// shared with every waiter of the entry, like cell builds.
func TestGetMeasurementSharesErrors(t *testing.T) {
	k := Key{Topology: "t"}
	c := New(0)
	c.PlanMeasurements(map[Key]int{k: 2})
	boom := errors.New("measurement failed")
	builds := 0
	for i := 0; i < 2; i++ {
		_, err := c.GetMeasurement(k, func() (*place.Environment, error) {
			builds++
			return nil, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("fetch %d: err = %v, want the build error", i, err)
		}
	}
	if builds != 1 {
		t.Errorf("failed build ran %d times, want 1 (error shared)", builds)
	}
}
