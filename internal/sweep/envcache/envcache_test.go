package envcache

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func key(seed int64) Key {
	return Key{Topology: "t", Workload: "w", CloudSeed: seed, VMs: 4, MeanBytes: 1 << 20, MinTasks: 3, MaxTasks: 4}
}

func TestSingleflightBuildsOnce(t *testing.T) {
	c := New(0)
	var builds atomic.Int64
	var wg sync.WaitGroup
	cells := make([]*Cell, 16)
	for i := range cells {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cell, err := c.Get(key(1), func() (*Cell, error) {
				builds.Add(1)
				return &Cell{}, nil
			})
			if err != nil {
				t.Error(err)
			}
			cells[i] = cell
		}(i)
	}
	wg.Wait()
	if builds.Load() != 1 {
		t.Fatalf("16 concurrent Gets built %d times, want 1", builds.Load())
	}
	for i := 1; i < len(cells); i++ {
		if cells[i] != cells[0] {
			t.Fatal("concurrent Gets returned different cells")
		}
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != 15 {
		t.Errorf("stats = %+v, want 1 miss / 15 hits", s)
	}
}

func TestDistinctKeysBuildSeparately(t *testing.T) {
	c := New(0)
	var builds atomic.Int64
	build := func() (*Cell, error) { builds.Add(1); return &Cell{}, nil }
	for seed := int64(1); seed <= 3; seed++ {
		if _, err := c.Get(key(seed), build); err != nil {
			t.Fatal(err)
		}
	}
	if builds.Load() != 3 {
		t.Errorf("3 distinct keys built %d times", builds.Load())
	}
}

func TestEvictionAfterDeclaredUses(t *testing.T) {
	c := New(2)
	var builds atomic.Int64
	build := func() (*Cell, error) { builds.Add(1); return &Cell{}, nil }
	for i := 0; i < 2; i++ {
		if _, err := c.Get(key(1), build); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 0 {
		t.Fatalf("entry should be evicted after its 2 declared uses, %d resident", c.Len())
	}
	// A use beyond the declaration rebuilds (counts as a miss).
	if _, err := c.Get(key(1), build); err != nil {
		t.Fatal(err)
	}
	if builds.Load() != 2 {
		t.Errorf("post-eviction Get should rebuild: %d builds", builds.Load())
	}
	s := c.Stats()
	if s.Misses != 2 || s.Hits != 1 {
		t.Errorf("stats = %+v, want 2 misses / 1 hit", s)
	}
}

func TestNilCacheBuildsEveryTime(t *testing.T) {
	var c *Cache
	var builds atomic.Int64
	for i := 0; i < 3; i++ {
		if _, err := c.Get(key(1), func() (*Cell, error) { builds.Add(1); return &Cell{}, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if builds.Load() != 3 {
		t.Errorf("nil cache built %d times, want 3", builds.Load())
	}
	if s := c.Stats(); s != (Stats{}) {
		t.Errorf("nil cache stats = %+v", s)
	}
	if c.Len() != 0 {
		t.Errorf("nil cache Len = %d", c.Len())
	}
}

func TestBuildErrorShared(t *testing.T) {
	c := New(0)
	boom := errors.New("boom")
	if _, err := c.Get(key(9), func() (*Cell, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("got %v, want the build error", err)
	}
	// Later Gets observe the same (cached) failure rather than rebuilding:
	// the cell is deterministic, so retrying cannot succeed.
	if _, err := c.Get(key(9), func() (*Cell, error) { t.Fatal("rebuilt"); return nil, nil }); !errors.Is(err, boom) {
		t.Fatalf("got %v, want the shared build error", err)
	}
}

func TestOptimalReferenceMemoized(t *testing.T) {
	cell := &Cell{}
	var computes atomic.Int64
	for i := 0; i < 4; i++ {
		v, ok, err := cell.OptimalReference(func() (float64, bool, error) {
			computes.Add(1)
			return 42, true, nil
		})
		if err != nil || !ok || v != 42 {
			t.Fatalf("reference = %v %v %v", v, ok, err)
		}
	}
	if computes.Load() != 1 {
		t.Errorf("reference computed %d times, want 1", computes.Load())
	}
}
