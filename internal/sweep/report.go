package sweep

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"choreo/internal/stats"
)

// Aggregate summarizes one algorithm across every scenario it ran in.
type Aggregate struct {
	Algorithm string `json:"algorithm"`
	// Scenarios is how many grid cells this algorithm ran.
	Scenarios int `json:"scenarios"`
	// Completion summarizes completion times in seconds.
	Completion stats.Summary `json:"completionSeconds"`
	// Slowdown summarizes slowdown vs the exact optimum, over the
	// scenarios where the optimum was computable (nil when none were).
	Slowdown *stats.Summary `json:"slowdown,omitempty"`
	// PlaceLatency summarizes wall-clock placement latency in seconds.
	// Nondeterministic; populated only when the grid's Timing knob is
	// on, so default reports stay byte-reproducible.
	PlaceLatency *stats.Summary `json:"placementLatencySeconds,omitempty"`

	// latency retains the raw wall-clock summary for String() even
	// when Timing keeps it out of the JSON encoding.
	latency stats.Summary
}

// Report is the deterministic output of a sweep run.
type Report struct {
	// Grid echoes the swept dimensions.
	Grid GridSummary `json:"grid"`
	// Scenarios holds every cell's result in expansion order.
	Scenarios []Result `json:"scenarios"`
	// Algorithms holds per-algorithm aggregates in grid order.
	Algorithms []Aggregate `json:"algorithms"`
}

// GridSummary is the serializable echo of a Grid.
type GridSummary struct {
	Topologies []string `json:"topologies"`
	Workloads  []string `json:"workloads"`
	Algorithms []string `json:"algorithms"`
	Seeds      []int64  `json:"seeds"`
	VMs        int      `json:"vms"`
	Apps       int      `json:"apps"`
	Scenarios  int      `json:"scenarios"`
}

// newReport assembles aggregates from per-scenario results.
func newReport(g *Grid, results []Result) (*Report, error) {
	sum := GridSummary{
		Seeds:     append([]int64(nil), g.Seeds...),
		VMs:       g.VMs,
		Apps:      g.Apps,
		Scenarios: len(results),
	}
	for _, t := range g.Topologies {
		sum.Topologies = append(sum.Topologies, t.Name)
	}
	for _, w := range g.Workloads {
		sum.Workloads = append(sum.Workloads, w.Name)
	}
	sum.Algorithms = g.algorithmNames()

	rep := &Report{Grid: sum, Scenarios: results}
	for _, name := range sum.Algorithms {
		var completions, slowdowns, latencies []float64
		for _, r := range results {
			if r.Algorithm != name {
				continue
			}
			completions = append(completions, r.CompletionSeconds)
			latencies = append(latencies, r.PlaceLatency.Seconds())
			if r.Slowdown != nil {
				slowdowns = append(slowdowns, *r.Slowdown)
			}
		}
		if len(completions) == 0 {
			continue
		}
		agg := Aggregate{Algorithm: name, Scenarios: len(completions)}
		var err error
		if agg.Completion, err = stats.Summarize(completions); err != nil {
			return nil, err
		}
		if agg.latency, err = stats.Summarize(latencies); err != nil {
			return nil, err
		}
		if len(slowdowns) > 0 {
			s, err := stats.Summarize(slowdowns)
			if err != nil {
				return nil, err
			}
			agg.Slowdown = &s
		}
		if g.Timing {
			lat := agg.latency
			agg.PlaceLatency = &lat
		}
		rep.Algorithms = append(rep.Algorithms, agg)
	}
	return rep, nil
}

// WriteJSON encodes the report as indented JSON. The encoding is
// byte-identical for identical grids and seeds regardless of worker
// count or host speed.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteCSV writes one deterministic row per scenario.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"topology", "workload", "algorithm", "seed", "vms", "tasks",
		"completion_seconds", "optimal_seconds", "slowdown",
	}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	// fp renders an optional value; absent references render empty so
	// "no reference" and "reference is zero" stay distinguishable.
	fp := func(v *float64) string {
		if v == nil {
			return ""
		}
		return f(*v)
	}
	for _, s := range r.Scenarios {
		row := []string{
			s.Topology, s.Workload, s.Algorithm,
			strconv.FormatInt(s.Seed, 10),
			strconv.Itoa(s.VMs), strconv.Itoa(s.Tasks),
			f(s.CompletionSeconds), fp(s.OptimalSeconds), fp(s.Slowdown),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// String renders the human-facing summary: one row per algorithm with
// completion, slowdown and wall-clock placement latency.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sweep: %d scenarios (%d topologies x %d workloads x %d algorithms x %d seeds)\n",
		r.Grid.Scenarios, len(r.Grid.Topologies), len(r.Grid.Workloads),
		len(r.Grid.Algorithms), len(r.Grid.Seeds))
	fmt.Fprintf(&b, "%-14s %5s %14s %14s %12s %14s\n",
		"algorithm", "n", "mean compl", "p95 compl", "mean slow", "mean place")
	for _, a := range r.Algorithms {
		slow := "-"
		if a.Slowdown != nil {
			slow = fmt.Sprintf("%.3fx", a.Slowdown.Mean)
		}
		fmt.Fprintf(&b, "%-14s %5d %13.2fs %13.2fs %12s %13.2fms\n",
			a.Algorithm, a.Scenarios, a.Completion.Mean, a.Completion.P95,
			slow, a.latency.Mean*1e3)
	}
	return b.String()
}
