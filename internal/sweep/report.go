package sweep

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"choreo/internal/stats"
	"choreo/internal/sweep/envcache"
)

// Aggregate summarizes one algorithm across every scenario it ran in.
type Aggregate struct {
	Algorithm string `json:"algorithm"`
	// Scenarios is how many grid cells this algorithm ran.
	Scenarios int `json:"scenarios"`
	// Completion summarizes completion times in seconds.
	Completion stats.Summary `json:"completionSeconds"`
	// Slowdown summarizes slowdown vs the exact optimum, over the
	// scenarios where the optimum was computable (nil when none were).
	Slowdown *stats.Summary `json:"slowdown,omitempty"`
	// PredictionError summarizes signed prediction error in percent —
	// 100 × (predicted − measured) / measured — over the scenarios that
	// executed their placement as real transfers (nil when none did, so
	// sim and predicted-only aggregates are byte-identical to the
	// pre-execution schema).
	PredictionError *stats.Summary `json:"predictionErrorPct,omitempty"`
	// Migrations summarizes per-scenario migration counts; present only
	// for sequence cells (snapshot aggregates are byte-identical to what
	// they were before sequence mode existed).
	Migrations *stats.Summary `json:"migrations,omitempty"`
	// PlaceLatency summarizes wall-clock placement latency in seconds.
	// Nondeterministic; populated only when the grid's Timing knob is
	// on, so default reports stay byte-reproducible.
	PlaceLatency *stats.Summary `json:"placementLatencySeconds,omitempty"`

	// latency retains the raw wall-clock summary for String() even
	// when Timing keeps it out of the JSON encoding.
	latency stats.Summary
}

// Report is the deterministic output of a collecting sweep run.
type Report struct {
	// Grid echoes the swept dimensions.
	Grid GridSummary `json:"grid"`
	// Scenarios holds every cell's result in expansion order.
	Scenarios []Result `json:"scenarios"`
	// Algorithms holds per-algorithm aggregates in grid order.
	Algorithms []Aggregate `json:"algorithms"`
	// Cache carries the environment-cache counters for the run. Kept out
	// of the JSON encoding: hit counts depend on cache state, and the
	// report bytes must not.
	Cache envcache.Stats `json:"-"`
}

// Summary is what a streaming run retains: the grid echo, per-algorithm
// aggregates and the cache counters — everything except the per-scenario
// results, which went through the Emit hook.
type Summary struct {
	Grid       GridSummary    `json:"grid"`
	Algorithms []Aggregate    `json:"algorithms"`
	Cache      envcache.Stats `json:"-"`
}

// GridSummary is the serializable echo of a Grid. It carries every knob
// that shapes result lines — the swept dimensions plus the scalar
// generation and reference bounds — because shard merging and resume
// compare (and hash) this echo to refuse combining runs produced under
// different flags.
type GridSummary struct {
	// Mode is "sequence" for §6.3 in-sequence grids; absent for
	// snapshot grids, whose echoes stay byte-identical to what they
	// were before sequence mode existed (resume and merge compare them
	// verbatim).
	Mode string `json:"mode,omitempty"`
	// Backend names the measurement plane for non-sim grids ("live");
	// absent for simulated grids, whose echoes (and hence grid hashes
	// and golden reports) are unchanged. Because resume and merge
	// compare echoes verbatim, a sim report can never be completed by —
	// or spliced with — a live one.
	Backend string `json:"backend,omitempty"`
	// Execute marks grids whose placements ran as real transfers
	// (measured completions). Part of the echo — and hence the grid
	// hash — so an executed run is never resumed by, or spliced with, a
	// predicted-only one.
	Execute    bool     `json:"execute,omitempty"`
	Topologies []string `json:"topologies"`
	Workloads  []string `json:"workloads"`
	Algorithms []string `json:"algorithms"`
	Seeds      []int64  `json:"seeds"`
	VMCounts   []int    `json:"vms"`
	MeanBytes  []int64  `json:"meanBytes"`
	// InterarrivalNs, SeqApps and ReevalNs are the sequence dimensions
	// in nanoseconds / applications-per-sequence; sequence grids only.
	InterarrivalNs []int64 `json:"interarrivalNs,omitempty"`
	SeqApps        []int   `json:"seqApps,omitempty"`
	ReevalNs       []int64 `json:"reevalNs,omitempty"`
	// MigrationGain and MaxMigrations are the sequence grids' scalar
	// migration knobs; they shape result lines, so they are part of the
	// echo (and hence the grid hash) like every other knob.
	MigrationGain float64 `json:"migrationGain,omitempty"`
	MaxMigrations int     `json:"maxMigrations,omitempty"`
	Apps          int     `json:"apps"`
	MinTasks      int     `json:"minTasks"`
	MaxTasks      int     `json:"maxTasks"`
	Model         string  `json:"model"`
	// OptimalMaxTasks/OptimalMaxNodes bound the slowdown-vs-optimal
	// reference, so they change result lines too.
	OptimalMaxTasks int  `json:"optimalMaxTasks"`
	OptimalMaxNodes int  `json:"optimalMaxNodes,omitempty"`
	Timing          bool `json:"timing,omitempty"`
	Scenarios       int  `json:"scenarios"`
}

// Summary validates and expands the grid's dimensions into the
// serializable echo that heads reports and streams, without running
// anything.
func (g *Grid) Summary() (GridSummary, error) {
	scenarios, err := g.Expand()
	if err != nil {
		return GridSummary{}, err
	}
	return g.summary(len(scenarios)), nil
}

// summary builds the grid echo. Call after applyDefaults (Expand does).
func (g *Grid) summary(scenarios int) GridSummary {
	sum := GridSummary{
		Seeds:           append([]int64(nil), g.Seeds...),
		VMCounts:        append([]int(nil), g.VMCounts...),
		Apps:            g.Apps,
		MinTasks:        g.MinTasks,
		MaxTasks:        g.MaxTasks,
		Model:           g.Model.String(),
		OptimalMaxTasks: g.OptimalMaxTasks,
		OptimalMaxNodes: g.OptimalMaxNodes,
		Timing:          g.Timing,
		Scenarios:       scenarios,
	}
	for _, size := range g.MeanSizes {
		sum.MeanBytes = append(sum.MeanBytes, int64(size))
	}
	for _, t := range g.Topologies {
		sum.Topologies = append(sum.Topologies, t.Name)
	}
	for _, w := range g.Workloads {
		sum.Workloads = append(sum.Workloads, w.Name)
	}
	sum.Algorithms = g.algorithmNames()
	if name := g.backendName(); name != "sim" {
		sum.Backend = name
		sum.Execute = g.backend().Executes()
	}
	if g.Mode == Sequence {
		sum.Mode = Sequence.String()
		for _, ia := range g.Interarrivals {
			sum.InterarrivalNs = append(sum.InterarrivalNs, int64(ia))
		}
		sum.SeqApps = append([]int(nil), g.SeqApps...)
		for _, rv := range g.Reevals {
			sum.ReevalNs = append(sum.ReevalNs, int64(rv))
		}
		sum.MigrationGain = g.MigrationGain
		sum.MaxMigrations = g.MaxMigrations
	}
	return sum
}

// Aggregator accumulates per-algorithm series incrementally, so a
// streaming run aggregates without retaining Results. Results must be
// added in a deterministic order (RunStream adds in expansion order) for
// the summaries to be byte-reproducible. It is exported so the shard
// merger can recompute the final aggregates line from spliced result
// lines: adding the same results in the same order reproduces the
// unsharded run's aggregates byte for byte.
type Aggregator struct {
	names       []string
	timing      bool
	completions map[string][]float64
	slowdowns   map[string][]float64
	latencies   map[string][]float64
	migrations  map[string][]float64
	errorPcts   map[string][]float64
}

// NewAggregator aggregates over the given algorithm names in that
// (grid) order. timing mirrors Grid.Timing: when set, wall-clock
// placement-latency summaries are included in the JSON aggregates.
func NewAggregator(algorithms []string, timing bool) *Aggregator {
	return &Aggregator{
		names:       algorithms,
		timing:      timing,
		completions: make(map[string][]float64),
		slowdowns:   make(map[string][]float64),
		latencies:   make(map[string][]float64),
		migrations:  make(map[string][]float64),
		errorPcts:   make(map[string][]float64),
	}
}

// Add folds one result into the per-algorithm series. Sequence results
// (recognizable by their sequence coordinates, so the shard merger's
// recomputation needs no extra mode plumbing) also feed the migration
// series.
func (a *Aggregator) Add(r Result) {
	a.completions[r.Algorithm] = append(a.completions[r.Algorithm], r.CompletionSeconds)
	a.latencies[r.Algorithm] = append(a.latencies[r.Algorithm], r.PlaceLatency.Seconds())
	if r.Slowdown != nil {
		a.slowdowns[r.Algorithm] = append(a.slowdowns[r.Algorithm], *r.Slowdown)
	}
	if r.ErrorPct != nil {
		a.errorPcts[r.Algorithm] = append(a.errorPcts[r.Algorithm], *r.ErrorPct)
	}
	if r.SeqApps > 0 {
		a.migrations[r.Algorithm] = append(a.migrations[r.Algorithm], float64(r.Migrations))
	}
}

// Aggregates summarizes every algorithm in grid order.
func (a *Aggregator) Aggregates() ([]Aggregate, error) {
	var out []Aggregate
	for _, name := range a.names {
		completions := a.completions[name]
		if len(completions) == 0 {
			continue
		}
		agg := Aggregate{Algorithm: name, Scenarios: len(completions)}
		var err error
		if agg.Completion, err = stats.Summarize(completions); err != nil {
			return nil, err
		}
		if agg.latency, err = stats.Summarize(a.latencies[name]); err != nil {
			return nil, err
		}
		if slowdowns := a.slowdowns[name]; len(slowdowns) > 0 {
			s, err := stats.Summarize(slowdowns)
			if err != nil {
				return nil, err
			}
			agg.Slowdown = &s
		}
		if errorPcts := a.errorPcts[name]; len(errorPcts) > 0 {
			s, err := stats.Summarize(errorPcts)
			if err != nil {
				return nil, err
			}
			agg.PredictionError = &s
		}
		if migrations := a.migrations[name]; len(migrations) > 0 {
			s, err := stats.Summarize(migrations)
			if err != nil {
				return nil, err
			}
			agg.Migrations = &s
		}
		if a.timing {
			lat := agg.latency
			agg.PlaceLatency = &lat
		}
		out = append(out, agg)
	}
	return out, nil
}

// WriteJSON encodes the report as indented JSON. The encoding is
// byte-identical for identical grids and seeds regardless of worker
// count, host speed or cache state.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteCSV writes one deterministic row per scenario. Sequence reports
// swap the snapshot-only optimal/slowdown columns for the sequence
// coordinates and migration count (the completion column then carries
// the §6.3 total running time). Executed grids append the
// measured-vs-predicted columns; everything else keeps the exact
// pre-execution column set.
func (r *Report) WriteCSV(w io.Writer) error {
	sequence := r.Grid.Mode == Sequence.String()
	executed := r.Grid.Execute
	cw := csv.NewWriter(w)
	header := []string{
		"topology", "workload", "algorithm", "seed", "vms", "mean_bytes", "tasks",
		"completion_seconds", "optimal_seconds", "slowdown",
	}
	if sequence {
		header = []string{
			"topology", "workload", "algorithm", "seed", "vms", "mean_bytes",
			"interarrival_seconds", "seq_apps", "reeval_seconds", "tasks",
			"total_running_seconds", "migrations",
		}
	}
	if executed {
		header = append(header, "predicted_s", "measured_s", "error_pct")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	// fp renders an optional value; absent references render empty so
	// "no reference" and "reference is zero" stay distinguishable.
	fp := func(v *float64) string {
		if v == nil {
			return ""
		}
		return f(*v)
	}
	for _, s := range r.Scenarios {
		row := []string{
			s.Topology, s.Workload, s.Algorithm,
			strconv.FormatInt(s.Seed, 10),
			strconv.Itoa(s.VMs), strconv.FormatInt(s.MeanBytes, 10),
		}
		if sequence {
			row = append(row,
				f(float64(s.InterarrivalNs)/1e9), strconv.Itoa(s.SeqApps), f(float64(s.ReevalNs)/1e9),
				strconv.Itoa(s.Tasks), f(s.CompletionSeconds), strconv.Itoa(s.Migrations))
		} else {
			row = append(row,
				strconv.Itoa(s.Tasks), f(s.CompletionSeconds), fp(s.OptimalSeconds), fp(s.Slowdown))
		}
		if executed {
			row = append(row, fp(s.PredictedSeconds), fp(s.MeasuredSeconds), fp(s.ErrorPct))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// String renders the human-facing summary: one row per algorithm with
// completion, slowdown and wall-clock placement latency.
func (r *Report) String() string {
	return renderSummary(r.Grid, r.Algorithms)
}

// String renders the same human-facing summary for a streaming run.
func (s *Summary) String() string {
	return renderSummary(s.Grid, s.Algorithms)
}

func renderSummary(grid GridSummary, algorithms []Aggregate) string {
	var b strings.Builder
	if grid.Mode == Sequence.String() {
		fmt.Fprintf(&b, "sweep: %d sequence scenarios (%d topologies x %d workloads x %d vm-counts x %d sizes x %d interarrivals x %d lengths x %d reevals x %d algorithms x %d seeds)\n",
			grid.Scenarios, len(grid.Topologies), len(grid.Workloads),
			len(grid.VMCounts), len(grid.MeanBytes),
			len(grid.InterarrivalNs), len(grid.SeqApps), len(grid.ReevalNs),
			len(grid.Algorithms), len(grid.Seeds))
		fmt.Fprintf(&b, "%-14s %5s %14s %14s %12s %14s\n",
			"algorithm", "n", "mean total-run", "p95 total-run", "mean migr", "mean place")
		for _, a := range algorithms {
			migr := "-"
			if a.Migrations != nil {
				migr = fmt.Sprintf("%.2f", a.Migrations.Mean)
			}
			fmt.Fprintf(&b, "%-14s %5d %13.2fs %13.2fs %12s %13.2fms\n",
				a.Algorithm, a.Scenarios, a.Completion.Mean, a.Completion.P95,
				migr, a.latency.Mean*1e3)
		}
		return b.String()
	}
	fmt.Fprintf(&b, "sweep: %d scenarios (%d topologies x %d workloads x %d vm-counts x %d sizes x %d algorithms x %d seeds)\n",
		grid.Scenarios, len(grid.Topologies), len(grid.Workloads),
		len(grid.VMCounts), len(grid.MeanBytes),
		len(grid.Algorithms), len(grid.Seeds))
	if grid.Execute {
		fmt.Fprintf(&b, "%-14s %5s %14s %14s %12s %12s %14s\n",
			"algorithm", "n", "mean compl", "p95 compl", "mean slow", "mean err", "mean place")
		for _, a := range algorithms {
			slow := "-"
			if a.Slowdown != nil {
				slow = fmt.Sprintf("%.3fx", a.Slowdown.Mean)
			}
			errPct := "-"
			if a.PredictionError != nil {
				errPct = fmt.Sprintf("%+.1f%%", a.PredictionError.Mean)
			}
			fmt.Fprintf(&b, "%-14s %5d %13.2fs %13.2fs %12s %12s %13.2fms\n",
				a.Algorithm, a.Scenarios, a.Completion.Mean, a.Completion.P95,
				slow, errPct, a.latency.Mean*1e3)
		}
		return b.String()
	}
	fmt.Fprintf(&b, "%-14s %5s %14s %14s %12s %14s\n",
		"algorithm", "n", "mean compl", "p95 compl", "mean slow", "mean place")
	for _, a := range algorithms {
		slow := "-"
		if a.Slowdown != nil {
			slow = fmt.Sprintf("%.3fx", a.Slowdown.Mean)
		}
		fmt.Fprintf(&b, "%-14s %5d %13.2fs %13.2fs %12s %13.2fms\n",
			a.Algorithm, a.Scenarios, a.Completion.Mean, a.Completion.P95,
			slow, a.latency.Mean*1e3)
	}
	return b.String()
}
