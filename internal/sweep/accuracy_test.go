package sweep

import (
	"strings"
	"testing"
)

func TestLoadAccuracyAggregates(t *testing.T) {
	stream := strings.Join([]string{
		`{"grid":{"mode":"snapshot","scenarios":5,"backend":"live","execute":true}}`,
		// choreo: errors +10%, -20%, +50% (abs 10, 20, 50)
		`{"topology":"ec2-2013","workload":"shuffle","algorithm":"choreo","seed":1,"vms":3,"meanBytes":1,"tasks":3,"completionSeconds":1,"predictedSeconds":1.1,"measuredSeconds":1,"errorPct":10}`,
		`{"topology":"ec2-2013","workload":"shuffle","algorithm":"choreo","seed":2,"vms":3,"meanBytes":1,"tasks":3,"completionSeconds":1,"predictedSeconds":0.8,"measuredSeconds":1,"errorPct":-20}`,
		`{"topology":"ec2-2013","workload":"shuffle","algorithm":"choreo","seed":3,"vms":3,"meanBytes":1,"tasks":3,"completionSeconds":1,"predictedSeconds":1.5,"measuredSeconds":1,"errorPct":50}`,
		// random: one executed row, +5%
		`{"topology":"ec2-2013","workload":"shuffle","algorithm":"random","seed":1,"vms":3,"meanBytes":1,"tasks":3,"completionSeconds":2,"predictedSeconds":2.1,"measuredSeconds":2,"errorPct":5}`,
		// a co-located predicted-only row: skipped, not an error
		`{"topology":"ec2-2013","workload":"shuffle","algorithm":"random","seed":2,"vms":3,"meanBytes":1,"tasks":3,"completionSeconds":1.5}`,
		`{"algorithms":[]}`,
	}, "\n") + "\n"

	rep, err := LoadAccuracy(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Executed != 4 || rep.Skipped != 1 {
		t.Fatalf("executed/skipped = %d/%d, want 4/1", rep.Executed, rep.Skipped)
	}
	if !rep.Grid.Execute || rep.Grid.Backend != "live" {
		t.Errorf("grid echo not preserved: %+v", rep.Grid)
	}
	if len(rep.Algorithms) != 2 {
		t.Fatalf("algorithms = %+v, want choreo and random", rep.Algorithms)
	}
	ch := rep.Algorithms[0]
	if ch.Algorithm != "choreo" || ch.Cells != 3 {
		t.Fatalf("first summary = %+v, want choreo with 3 cells", ch)
	}
	if ch.AbsP50 != 20 || ch.AbsMax != 50 {
		t.Errorf("choreo |error| p50/max = %v/%v, want 20/50", ch.AbsP50, ch.AbsMax)
	}
	wantBias := (10.0 - 20.0 + 50.0) / 3
	if diff := ch.MeanBias - wantBias; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("choreo mean bias = %v, want %v", ch.MeanBias, wantBias)
	}
	// Worst-predicted is sorted by |error|: choreo +50, choreo -20, ...
	if rep.Worst[0].ErrorPct != 50 || rep.Worst[1].ErrorPct != -20 {
		t.Errorf("worst ordering = %+v", rep.Worst)
	}
	// Calibration: ratios 1.1, 0.8, 1.5, 1.05 — one per band around 1.
	var calibrated, under, over int
	for _, band := range rep.Calibration {
		switch band.Label {
		case "0.9x - 1.1x (calibrated)":
			calibrated = band.Cells
		case "0.5x - 0.9x (under)":
			under = band.Cells
		case "1.1x - 2x (over)":
			over = band.Cells
		}
	}
	// 1.1 lands in [1.1, 2): bands are half-open on the left edge.
	if calibrated != 1 || under != 1 || over != 2 {
		t.Errorf("calibration = %d calibrated / %d under / %d over, want 1/1/2: %+v",
			calibrated, under, over, rep.Calibration)
	}
	for _, want := range []string{"4 executed cells", "1 predicted-only rows skipped", "choreo", "worst-predicted cells"} {
		if out := rep.Render(); !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestLoadAccuracyRejects(t *testing.T) {
	// No grid header.
	if _, err := LoadAccuracy(strings.NewReader(`{"algorithms":[]}` + "\n")); err == nil || !strings.Contains(err.Error(), "no grid header") {
		t.Errorf("headerless stream error = %v", err)
	}
	// Grid but zero measured rows: predicted-only run, nothing to validate.
	stream := `{"grid":{"backend":"live"}}` + "\n" +
		`{"topology":"t","workload":"w","algorithm":"a","seed":1,"vms":2,"meanBytes":1,"tasks":2,"completionSeconds":1}` + "\n"
	if _, err := LoadAccuracy(strings.NewReader(stream)); err == nil || !strings.Contains(err.Error(), "no measured rows") {
		t.Errorf("predicted-only stream error = %v", err)
	}
	// Malformed line is a line-precise error.
	if _, err := LoadAccuracy(strings.NewReader("{\"grid\":{}}\nnot json\n")); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("malformed line error = %v", err)
	}
}
