package sweep

import (
	"runtime"
	"sync/atomic"
	"time"

	"choreo/internal/obs"
	"choreo/internal/sweep/envcache"
)

// runObs carries one sweep run's observability state: the observer, the
// registered metric handles and the run span every cell span parents
// under. It is always non-nil inside RunStream — with no observer the
// handles are standalone no-reader metrics and the spans are zero — so
// the engine instruments unconditionally and the data path never
// branches on "is observability on". Everything here records wall-clock
// and counts into obs sinks only; the result bytes flowing through Emit
// are untouched (see TestObservabilityOffDataPath).
type runObs struct {
	o       *obs.Observer
	runSpan obs.Span

	cellSeconds  *obs.Histogram    // choreo_sweep_cell_seconds
	phaseSeconds *obs.HistogramVec // choreo_sweep_phase_seconds{phase}
	reorderDepth *obs.Gauge        // choreo_sweep_reorder_depth
	workersGauge *obs.Gauge        // choreo_sweep_workers
	utilization  *obs.Gauge        // choreo_sweep_worker_utilization
	acc          *obs.Accuracy     // choreo_prediction_* (executed cells)

	busyNs atomic.Int64 // total cell wall-clock, for utilization
}

func newRunObs(o *obs.Observer) *runObs {
	r := o.Registry()
	return &runObs{
		o: o,
		cellSeconds: r.Histogram("choreo_sweep_cell_seconds",
			"Wall-clock duration of one sweep cell (build + place + execute).",
			obs.DurationBuckets()),
		phaseSeconds: r.HistogramVec("choreo_sweep_phase_seconds",
			"Wall-clock duration of sweep cell phases.", obs.DurationBuckets(), "phase"),
		reorderDepth: r.Gauge("choreo_sweep_reorder_depth",
			"Results completed but waiting for expansion-order predecessors."),
		workersGauge: r.Gauge("choreo_sweep_workers",
			"Worker pool size of the current sweep run."),
		utilization: r.Gauge("choreo_sweep_worker_utilization",
			"Fraction of worker wall-clock spent inside cells over the last run."),
		acc: obs.NewAccuracy(r),
	}
}

// start opens the run span and records the resolved pool size.
func (ro *runObs) start(g *Grid, scenarios, workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ro.workersGauge.Set(float64(workers))
	ro.runSpan = ro.o.StartSpan(obs.Span{}, "sweep.run",
		obs.String("backend", g.backendName()),
		obs.Int("scenarios", int64(scenarios)),
		obs.Int("workers", int64(workers)))
}

// finish closes the run span and derives worker utilization: the share
// of (workers × wall-clock) actually spent inside cells.
func (ro *runObs) finish(wall time.Duration, outcome string) {
	workers := ro.workersGauge.Value()
	if workers > 0 && wall > 0 {
		ro.utilization.Set(float64(ro.busyNs.Load()) / (workers * float64(wall.Nanoseconds())))
	}
	ro.runSpan.End(obs.String("outcome", outcome))
}

// phase records one phase duration. Nil-safe: runScenario is reachable
// from the exported Run* entry points only, which always build a runObs,
// but the guard keeps a future direct caller from tripping.
func (ro *runObs) phase(name string, start time.Time) {
	if ro == nil {
		return
	}
	ro.phaseSeconds.With(name).Observe(time.Since(start).Seconds())
}

// phaseDur records a phase whose duration the caller already measured
// (placement latency is part of the result contract, not re-timed).
func (ro *runObs) phaseDur(name string, d time.Duration) {
	if ro == nil {
		return
	}
	ro.phaseSeconds.With(name).Observe(d.Seconds())
}

// span opens a span on the run's observer under the given parent.
func (ro *runObs) span(parent obs.Span, name string, attrs ...obs.Attr) obs.Span {
	if ro == nil {
		return obs.Span{}
	}
	return ro.o.StartSpan(parent, name, attrs...)
}

// cellSpan opens one cell's span under the run span.
func (ro *runObs) cellSpan(sc Scenario) obs.Span {
	if ro == nil {
		return obs.Span{}
	}
	return ro.o.StartSpan(ro.runSpan, "sweep.cell",
		obs.String("topology", sc.Topology.Name),
		obs.String("workload", sc.Workload.Name),
		obs.String("algorithm", sc.Algorithm.Name),
		obs.Int("seed", sc.Seed),
		obs.Int("vms", int64(sc.VMs)))
}

// cellDone folds a finished cell into the histograms.
func (ro *runObs) cellDone(d time.Duration) {
	if ro == nil {
		return
	}
	ro.cellSeconds.Observe(d.Seconds())
	ro.busyNs.Add(d.Nanoseconds())
}

// recordAccuracy folds one executed cell's predicted and measured
// completion (seconds) into the accuracy plane.
func (ro *runObs) recordAccuracy(algorithm, topology string, predicted, measured float64) {
	if ro == nil {
		return
	}
	ro.acc.RecordExecution(algorithm, topology, predicted, measured)
}

// depth records the reorder buffer's occupancy after a delivery.
func (ro *runObs) depth(n int) {
	if ro == nil {
		return
	}
	ro.reorderDepth.Set(float64(n))
}

// registerCacheFuncs bridges the envcache counters into the registry so
// a scrape mid-run (choreo serve) or the final exposition sees cache
// effectiveness without the cache knowing about obs. Registered
// per-run; re-registration replaces the previous run's closure.
func (ro *runObs) registerCacheFuncs(cache *envcache.Cache) {
	r := ro.o.Registry()
	if r == nil {
		return
	}
	r.CounterFunc("choreo_envcache_hits_total",
		"Environment-cache cell hits.",
		func() float64 { return float64(cache.Stats().Hits) })
	r.CounterFunc("choreo_envcache_misses_total",
		"Environment-cache cell misses (cells actually built).",
		func() float64 { return float64(cache.Stats().Misses) })
	r.CounterFunc("choreo_envcache_evictions_total",
		"Environment-cache entries released by their last planned fetch.",
		func() float64 { return float64(cache.Stats().Evictions) })
	r.GaugeFunc("choreo_envcache_resident",
		"Environment-cache entries currently resident.",
		func() float64 { return float64(cache.Stats().Resident) })
}
