package sweep

import (
	"runtime"
	"sync"
)

// Parallel runs fn(i) for every i in [0, n) across a pool of worker
// goroutines. Workers pull indices from a shared queue, so callers that
// write results into a pre-sized slice at index i get output that is
// independent of scheduling order and of the worker count — the property
// the sweep engine's determinism guarantee rests on.
//
// workers <= 0 means runtime.GOMAXPROCS(0). Every index runs even if an
// earlier one fails; the error for the smallest failing index is
// returned, again so the outcome does not depend on scheduling.
func Parallel(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}

	indices := make(chan int)
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range indices {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		indices <- i
	}
	close(indices)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
