package sweep

import (
	"bytes"
	"strings"
	"testing"

	"choreo/internal/obs"
)

// streamBytes runs the golden grid through the streaming pipeline and
// returns the emitted bytes, optionally under full instrumentation.
func streamBytes(t *testing.T, o *obs.Observer, workers int) []byte {
	t.Helper()
	g := goldenGrid()
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	hdr, err := g.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Header(hdr); err != nil {
		t.Fatal(err)
	}
	sum, err := RunStream(g, RunOptions{Workers: workers, Emit: sw.Result, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Finish(sum.Algorithms); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestObservabilityOffDataPath is the tentpole guarantee: turning on
// metrics and span tracing changes NOTHING about the result bytes. The
// instrumented stream must be byte-identical to the bare one — spans,
// histograms, and cache counters live strictly off the data path.
func TestObservabilityOffDataPath(t *testing.T) {
	bare := streamBytes(t, nil, 4)

	var events bytes.Buffer
	o := &obs.Observer{Metrics: obs.NewRegistry(), Trace: obs.NewTracer(&events)}
	instrumented := streamBytes(t, o, 4)
	if err := o.Trace.Flush(); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(bare, instrumented) {
		t.Fatal("instrumented sweep output differs from uninstrumented output")
	}

	g := goldenGrid()
	scenarios, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}

	// The event log is schema-valid with balanced start/end pairs.
	evs, err := obs.DecodeEvents(bytes.NewReader(events.Bytes()))
	if err != nil {
		t.Fatalf("event log invalid: %v", err)
	}
	counts := map[string]int{}
	var runID int64
	for _, e := range evs {
		if e.Ev != "start" {
			continue
		}
		counts[e.Name]++
		if e.Name == "sweep.run" {
			runID = e.Span
		}
	}
	if counts["sweep.run"] != 1 {
		t.Errorf("sweep.run spans = %d, want 1", counts["sweep.run"])
	}
	if counts["sweep.cell"] != len(scenarios) {
		t.Errorf("sweep.cell spans = %d, want %d", counts["sweep.cell"], len(scenarios))
	}
	if counts["sweep.report"] != len(scenarios) {
		t.Errorf("sweep.report spans = %d, want %d", counts["sweep.report"], len(scenarios))
	}
	if counts["sweep.place"] != len(scenarios) {
		t.Errorf("sweep.place spans = %d, want %d", counts["sweep.place"], len(scenarios))
	}
	// Cells built once per unique cloud: build/measure spans count the
	// cache misses, not the scenarios.
	cells := len(g.Topologies) * len(g.Workloads) * len(g.MeanSizes) * len(g.Seeds)
	if counts["sweep.build"] != cells {
		t.Errorf("sweep.build spans = %d, want %d (one per unique cell)", counts["sweep.build"], cells)
	}
	if counts["sweep.measure"] != cells {
		t.Errorf("sweep.measure spans = %d, want %d", counts["sweep.measure"], cells)
	}
	for _, e := range evs {
		if e.Ev == "start" && e.Name == "sweep.cell" && e.Parent != runID {
			t.Errorf("sweep.cell span %d parented under %d, want run span %d", e.Span, e.Parent, runID)
		}
		if e.Ev == "end" && e.Name == "sweep.run" && e.Attrs["outcome"] != "ok" {
			t.Errorf("sweep.run ended with attrs %v, want outcome ok", e.Attrs)
		}
	}

	// Metrics landed in the registry and the exposition is well-formed.
	var expo bytes.Buffer
	if err := o.Metrics.WritePrometheus(&expo); err != nil {
		t.Fatal(err)
	}
	out := expo.String()
	if _, err := obs.ValidatePrometheus(strings.NewReader(out)); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
	for _, want := range []string{
		"choreo_sweep_cell_seconds_count 32",
		"choreo_envcache_misses_total 16",
		"choreo_envcache_hits_total 16",
		"choreo_sweep_workers 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
