// Package sweep expands a declarative grid of placement scenarios —
// topology × workload × algorithm × seed — and runs every cell across a
// worker pool, aggregating completion time, slowdown versus the exact
// optimum and placement latency into deterministic JSON/CSV reports.
//
// Determinism is the load-bearing property: every scenario derives all of
// its randomness from the grid seed and the cell's coordinates, runs in
// isolation on its own simulated cloud, and lands in the report at its
// expansion index. The same grid therefore produces byte-identical JSON
// whether it runs on one worker or on GOMAXPROCS workers.
package sweep

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"choreo/internal/core"
	"choreo/internal/place"
	"choreo/internal/sweep/backend"
	"choreo/internal/topology"
	"choreo/internal/units"
	"choreo/internal/workload"
)

// Mode selects what one grid cell runs.
type Mode int

const (
	// Snapshot cells (the zero value) run one static placement problem
	// per cell — the §6.2 experiments PRs 1–3 built.
	Snapshot Mode = iota
	// Sequence cells run the §6.3 in-sequence experiment: applications
	// arrive over time on one shared cloud, each is placed as it
	// arrives, and placements are periodically re-evaluated and
	// migrated. Sequence grids sweep three extra dimensions —
	// interarrival, sequence length and re-evaluation period.
	Sequence
)

// String names the mode as grid echoes and the CLI spell it.
func (m Mode) String() string {
	switch m {
	case Snapshot:
		return "snapshot"
	case Sequence:
		return "sequence"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Topology is one named provider profile in the grid.
type Topology struct {
	Name    string
	Profile topology.Profile
}

// TopologyNames lists the profiles TopologyByName accepts. fattree-K and
// jellyfish-N generalize: any even K >= 2 and any N >= 2 parse.
func TopologyNames() []string {
	return []string{"ec2-2013", "ec2-2012", "rackspace", "private", "dumbbell", "tworack",
		"fattree-4", "jellyfish-12"}
}

// jellyfishPorts and jellyfishSeed fix the per-switch port budget and the
// fabric wiring seed for the jellyfish-N grid profiles, so a name like
// "jellyfish-12" denotes one reproducible cloud.
const (
	jellyfishPorts = 6
	jellyfishSeed  = 7
)

// TopologyByName resolves a provider profile: the paper's measured
// VM-pair clouds (ec2-2013, ec2-2012, rackspace, private), the ns-2 tree
// fabrics (dumbbell, tworack), and the cluster-scheduling fabrics
// fattree-K (k-ary fat tree, even K) and jellyfish-N (N-switch random
// regular graph).
func TopologyByName(name string) (Topology, error) {
	switch name {
	case "ec2-2013", "ec2":
		return Topology{Name: "ec2-2013", Profile: topology.EC22013()}, nil
	case "ec2-2012":
		return Topology{Name: "ec2-2012", Profile: topology.EC22012(0)}, nil
	case "rackspace":
		return Topology{Name: "rackspace", Profile: topology.Rackspace()}, nil
	case "private":
		return Topology{Name: "private", Profile: topology.PrivateCloud()}, nil
	case "dumbbell":
		return Topology{Name: "dumbbell", Profile: topology.Dumbbell(8, units.Gbps(1), units.Gbps(1))}, nil
	case "tworack":
		return Topology{Name: "tworack", Profile: topology.TwoRack(8, units.Gbps(1), units.Gbps(10))}, nil
	case "fattree":
		return TopologyByName("fattree-4")
	case "jellyfish":
		return TopologyByName("jellyfish-12")
	}
	if k, ok := nameParam(name, "fattree-"); ok {
		if k < 2 || k%2 != 0 {
			return Topology{}, fmt.Errorf("sweep: fat tree needs an even k >= 2, got %q", name)
		}
		return Topology{Name: fmt.Sprintf("fattree-%d", k), Profile: topology.FatTree(k)}, nil
	}
	if n, ok := nameParam(name, "jellyfish-"); ok {
		// The fixed port budget dedicates jellyfishPorts/2 ports per
		// switch to peer links, and a random regular graph needs more
		// switches than its degree.
		if minSwitches := (jellyfishPorts+1)/2 + 1; n < minSwitches {
			return Topology{}, fmt.Errorf("sweep: jellyfish needs >= %d switches, got %q", minSwitches, name)
		}
		return Topology{Name: fmt.Sprintf("jellyfish-%d", n), Profile: topology.Jellyfish(n, jellyfishPorts, jellyfishSeed)}, nil
	}
	return Topology{}, fmt.Errorf("sweep: unknown topology %q (valid: %s)",
		name, strings.Join(TopologyNames(), ", "))
}

// nameParam parses the integer suffix of a parameterized profile name.
func nameParam(name, prefix string) (int, bool) {
	if !strings.HasPrefix(name, prefix) {
		return 0, false
	}
	v, err := strconv.Atoi(name[len(prefix):])
	if err != nil {
		return 0, false
	}
	return v, true
}

// Workload is one named application source in the grid: either a
// generator restricted to a communication pattern, or a recorded trace.
type Workload struct {
	Name string
	// Patterns restricts the generator; empty means the full mix.
	Patterns []workload.Pattern
	// Trace, when non-nil, replays recorded applications instead of
	// generating them.
	Trace *workload.Trace
}

// WorkloadNames lists the generator presets WorkloadByName accepts.
func WorkloadNames() []string { return workload.PresetNames() }

// WorkloadByName resolves a generator preset: "mixed" draws from every
// pattern, the others pin one communication shape.
func WorkloadByName(name string) (Workload, error) {
	patterns, ok := workload.PresetPatterns(name)
	if !ok {
		return Workload{}, fmt.Errorf("sweep: unknown workload %q (valid: %s, or a trace)",
			name, strings.Join(WorkloadNames(), ", "))
	}
	return Workload{Name: name, Patterns: patterns}, nil
}

// TraceWorkload wraps a recorded trace as a grid workload.
func TraceWorkload(tr *workload.Trace) Workload {
	name := tr.Name
	if name == "" {
		name = "trace"
	}
	return Workload{Name: "trace:" + name, Trace: tr}
}

// Algorithm is one placement policy in the grid.
type Algorithm struct {
	Name string
	// Core is the orchestrator algorithm; ignored when ILP is set.
	Core core.Algorithm
	// ILP selects the paper's Appendix integer program instead of a
	// core algorithm.
	ILP bool
}

// AlgorithmNames lists the policies AlgorithmByName accepts.
func AlgorithmNames() []string {
	return []string{"choreo", "random", "round-robin", "min-machines", "optimal", "ilp"}
}

// AlgorithmByName resolves a placement policy.
func AlgorithmByName(name string) (Algorithm, error) {
	switch name {
	case "choreo", "greedy":
		return Algorithm{Name: "choreo", Core: core.AlgChoreo}, nil
	case "random":
		return Algorithm{Name: "random", Core: core.AlgRandom}, nil
	case "round-robin", "roundrobin":
		return Algorithm{Name: "round-robin", Core: core.AlgRoundRobin}, nil
	case "min-machines", "minmachines":
		return Algorithm{Name: "min-machines", Core: core.AlgMinMachines}, nil
	case "optimal":
		return Algorithm{Name: "optimal", Core: core.AlgOptimal}, nil
	case "ilp":
		return Algorithm{Name: "ilp", ILP: true}, nil
	}
	return Algorithm{}, fmt.Errorf("sweep: unknown algorithm %q (valid: %s)",
		name, strings.Join(AlgorithmNames(), ", "))
}

// Grid declares a sweep: the cross product of every dimension plus the
// per-scenario knobs shared by all cells.
type Grid struct {
	// Mode selects snapshot cells (single static placements, the zero
	// value) or sequence cells (§6.3 in-sequence arrival/migration
	// experiments). Sequence grids cross the three sequence dimensions
	// below; snapshot grids must leave them empty.
	Mode       Mode
	Topologies []Topology
	Workloads  []Workload
	Algorithms []Algorithm
	// Seeds holds the grid seeds; each contributes one full cross
	// product of scenarios.
	Seeds []int64
	// VMCounts sweeps the tenant allocation size; empty means one entry,
	// the scalar VMs knob.
	VMCounts []int
	// MeanSizes sweeps the mean generated transfer size; empty means one
	// entry, the scalar MeanBytes knob. Trace workloads replay recorded
	// transfers, so they do not cross this dimension: each trace
	// contributes one cell per VM count and seed, reported with
	// meanBytes 0.
	MeanSizes []units.ByteSize
	// Interarrivals sweeps the mean of the Poisson arrival process
	// (sequence mode only; empty defaults to one 30s entry).
	Interarrivals []time.Duration
	// SeqApps sweeps the sequence length: how many applications arrive
	// in one cell (sequence mode only; empty defaults to one entry, 8).
	SeqApps []int
	// Reevals sweeps the §2.4 re-evaluation period; a 0 entry disables
	// re-evaluation and migration for that cell (sequence mode only;
	// empty defaults to the single entry 0). Cells differing only in
	// re-evaluation share one built-and-measured environment — the
	// period changes how a sequence runs, not the cloud or the arrivals.
	Reevals []time.Duration

	// VMs is the tenant allocation per scenario (default 8) when
	// VMCounts does not sweep it.
	VMs int
	// Apps is how many applications are combined into one placement
	// problem per scenario. 0 means the default: one generated
	// application, or the whole trace for trace workloads.
	Apps int
	// MinTasks/MaxTasks bound generated application sizes
	// (defaults 4 and 6, small enough for the exact optimum).
	MinTasks, MaxTasks int
	// MeanBytes scales generated transfers (default 200 MB) when
	// MeanSizes does not sweep it.
	MeanBytes units.ByteSize
	// Model is the rate model for greedy/optimal placement. The zero
	// value is the pipe model; Default() and `choreo sweep` use hose.
	Model place.Model
	// MigrationGain is the minimum predicted relative improvement to
	// migrate a running application (sequence mode; default 0.2).
	MigrationGain float64
	// MaxMigrations caps migrations per application (sequence mode;
	// default 3).
	MaxMigrations int

	// Backend selects the measurement plane: nil (or backend.NewSim())
	// measures and executes cells on the deterministic netsim cloud;
	// backend.NewLive measures real choreo-agent meshes and evaluates
	// placements by their predicted completion time on the observed
	// rates. Live grids are snapshot-only and their reports carry the
	// backend name in the grid echo, so sim and live runs of the same
	// grid diff cleanly but can never be merged or resumed into each
	// other.
	Backend backend.Backend

	// OptimalMaxTasks bounds the slowdown-vs-optimal reference: the
	// exact branch-and-bound optimum is computed only for applications
	// of at most this many tasks (0 disables the reference entirely).
	OptimalMaxTasks int
	// OptimalMaxNodes caps branch-and-bound (and ILP) search nodes;
	// 0 means the solvers' generous defaults.
	OptimalMaxNodes int
	// Timing adds wall-clock placement-latency aggregates to the
	// report. They are real measurements, hence nondeterministic, so
	// they are off by default to keep reports byte-reproducible.
	Timing bool
}

// Default returns the stock grid used by `choreo sweep`: 4 topologies ×
// 2 workloads × 2 VM counts × 2 transfer sizes × 3 algorithms × 2 seeds
// = 192 scenarios over 64 unique cells.
func Default() Grid {
	g := Grid{
		Seeds:     []int64{1, 2},
		Model:     place.Hose,
		VMCounts:  []int{6, 10},
		MeanSizes: []units.ByteSize{64 * units.Megabyte, 200 * units.Megabyte},
	}
	for _, t := range []string{"ec2-2013", "rackspace", "fattree-4", "jellyfish-12"} {
		tp, _ := TopologyByName(t)
		g.Topologies = append(g.Topologies, tp)
	}
	for _, w := range []string{"shuffle", "uniform"} {
		wl, _ := WorkloadByName(w)
		g.Workloads = append(g.Workloads, wl)
	}
	for _, a := range []string{"choreo", "random", "round-robin"} {
		alg, _ := AlgorithmByName(a)
		g.Algorithms = append(g.Algorithms, alg)
	}
	g.applyDefaults()
	return g
}

// DefaultSequence returns the stock sequence grid used by
// `choreo sweep -mode sequence`: 2 topologies × 2 interarrivals ×
// 2 re-evaluation periods × 3 algorithms × 2 seeds = 48 scenarios over
// 8 unique cells, each cell an 8-application arrival sequence. The
// sizes and interarrivals are chosen so applications overlap — the
// regime where re-measuring under live cross traffic (and migrating)
// can beat oblivious placement, the paper's §6.3 comparison.
func DefaultSequence() Grid {
	g := Grid{
		Mode:          Sequence,
		Seeds:         []int64{1, 2},
		Model:         place.Hose,
		VMCounts:      []int{6},
		MeanSizes:     []units.ByteSize{400 * units.Megabyte},
		Interarrivals: []time.Duration{5 * time.Second, 20 * time.Second},
		SeqApps:       []int{8},
		Reevals:       []time.Duration{0, 10 * time.Second},
	}
	for _, t := range []string{"ec2-2013", "rackspace"} {
		tp, _ := TopologyByName(t)
		g.Topologies = append(g.Topologies, tp)
	}
	wl, _ := WorkloadByName("shuffle")
	g.Workloads = []Workload{wl}
	for _, a := range []string{"choreo", "random", "round-robin"} {
		alg, _ := AlgorithmByName(a)
		g.Algorithms = append(g.Algorithms, alg)
	}
	g.applyDefaults()
	return g
}

// applyDefaults fills zero-valued knobs and lifts the scalar VM/transfer
// knobs into single-entry sweep dimensions.
func (g *Grid) applyDefaults() {
	if g.VMs == 0 {
		g.VMs = 8
	}
	if g.MinTasks == 0 {
		g.MinTasks = 4
	}
	if g.MaxTasks == 0 {
		g.MaxTasks = 6
	}
	if g.MeanBytes == 0 {
		g.MeanBytes = workload.Default().MeanBytes
	}
	if g.OptimalMaxTasks == 0 {
		g.OptimalMaxTasks = 6
	}
	if len(g.VMCounts) == 0 {
		g.VMCounts = []int{g.VMs}
	}
	if len(g.MeanSizes) == 0 {
		g.MeanSizes = []units.ByteSize{g.MeanBytes}
	}
	if g.Mode == Sequence {
		if len(g.Interarrivals) == 0 {
			g.Interarrivals = []time.Duration{30 * time.Second}
		}
		if len(g.SeqApps) == 0 {
			g.SeqApps = []int{8}
		}
		if len(g.Reevals) == 0 {
			g.Reevals = []time.Duration{0}
		}
		if g.MigrationGain == 0 {
			g.MigrationGain = 0.2
		}
		if g.MaxMigrations == 0 {
			g.MaxMigrations = 3
		}
	}
}

// Validate checks the grid is runnable.
func (g *Grid) Validate() error {
	if len(g.Topologies) == 0 {
		return fmt.Errorf("sweep: grid has no topologies")
	}
	if len(g.Workloads) == 0 {
		return fmt.Errorf("sweep: grid has no workloads")
	}
	if len(g.Algorithms) == 0 {
		return fmt.Errorf("sweep: grid has no algorithms")
	}
	if len(g.Seeds) == 0 {
		return fmt.Errorf("sweep: grid has no seeds")
	}
	for _, vms := range g.VMCounts {
		if vms < 2 {
			return fmt.Errorf("sweep: need at least 2 VMs, got %d", vms)
		}
	}
	for _, size := range g.MeanSizes {
		if size <= 0 {
			return fmt.Errorf("sweep: mean transfer size must be positive, got %v", size)
		}
	}
	if g.MinTasks < 2 || g.MaxTasks < g.MinTasks {
		return fmt.Errorf("sweep: invalid task bounds [%d, %d]", g.MinTasks, g.MaxTasks)
	}
	seen := map[string]bool{}
	for _, w := range g.Workloads {
		if w.Trace == nil && w.Name != "mixed" && len(w.Patterns) == 0 {
			return fmt.Errorf("sweep: workload %q has neither patterns nor a trace", w.Name)
		}
		if seen[w.Name] {
			return fmt.Errorf("sweep: duplicate workload %q", w.Name)
		}
		seen[w.Name] = true
	}
	// Duplicate topology or algorithm names would give two scenarios the
	// same identity (topology, workload, algorithm, seed, VMs, size) —
	// their result lines would be indistinguishable, which breaks shard
	// merging and resume as well as the reader.
	seenTopo := map[string]bool{}
	for _, tp := range g.Topologies {
		if seenTopo[tp.Name] {
			return fmt.Errorf("sweep: duplicate topology %q", tp.Name)
		}
		seenTopo[tp.Name] = true
	}
	seenAlg := map[string]bool{}
	for _, a := range g.Algorithms {
		if seenAlg[a.Name] {
			return fmt.Errorf("sweep: duplicate algorithm %q", a.Name)
		}
		seenAlg[a.Name] = true
	}
	seenSeed := map[int64]bool{}
	for _, s := range g.Seeds {
		if seenSeed[s] {
			return fmt.Errorf("sweep: duplicate seed %d", s)
		}
		seenSeed[s] = true
	}
	seenVMs := map[int]bool{}
	for _, vms := range g.VMCounts {
		if seenVMs[vms] {
			return fmt.Errorf("sweep: duplicate VM count %d", vms)
		}
		seenVMs[vms] = true
	}
	seenSize := map[units.ByteSize]bool{}
	for _, size := range g.MeanSizes {
		if seenSize[size] {
			return fmt.Errorf("sweep: duplicate mean transfer size %v", size)
		}
		seenSize[size] = true
	}
	if err := g.validateMode(); err != nil {
		return err
	}
	// Capacity last: "sequence mode is sim-only" is the real problem on
	// a sequence grid, not the fleet size.
	maxVMs := 0
	for _, vms := range g.VMCounts {
		if vms > maxVMs {
			maxVMs = vms
		}
	}
	// Validation is a synchronous, one-shot check; capacity today is a
	// local fleet-size comparison, so Background is the right context.
	return g.backend().CheckCapacity(context.Background(), maxVMs)
}

// backend returns the grid's measurement backend, defaulting to the
// simulator.
func (g *Grid) backend() backend.Backend {
	if g.Backend == nil {
		return backend.NewSim()
	}
	return g.Backend
}

// backendName names the grid's backend ("sim" when unset).
func (g *Grid) backendName() string { return g.backend().Name() }

// validateMode checks the mode-specific dimensions: sequence grids need
// runnable sequence dimensions and only sequence-capable workloads and
// algorithms; snapshot grids must not set sequence knobs at all, so a
// forgotten `-mode sequence` fails loudly instead of silently ignoring
// the flags.
func (g *Grid) validateMode() error {
	if g.Mode == Snapshot {
		if len(g.Interarrivals) != 0 || len(g.SeqApps) != 0 || len(g.Reevals) != 0 {
			return fmt.Errorf("sweep: interarrival/sequence-length/re-evaluation dimensions apply only to sequence mode (set Mode: Sequence / -mode sequence)")
		}
		if g.MigrationGain != 0 || g.MaxMigrations != 0 {
			return fmt.Errorf("sweep: migration knobs apply only to sequence mode (set Mode: Sequence / -mode sequence)")
		}
		return nil
	}
	if g.Mode != Sequence {
		return fmt.Errorf("sweep: unknown mode %v", g.Mode)
	}
	if name := g.backendName(); name != "sim" {
		return fmt.Errorf("sweep: sequence mode is sim-only: the %s backend measures a real mesh, and in-sequence execution (arrivals, cross traffic, migration) needs the simulator", name)
	}
	seenInter := map[time.Duration]bool{}
	for _, ia := range g.Interarrivals {
		if ia <= 0 {
			return fmt.Errorf("sweep: mean interarrival must be positive, got %v", ia)
		}
		if seenInter[ia] {
			return fmt.Errorf("sweep: duplicate interarrival %v", ia)
		}
		seenInter[ia] = true
	}
	seenApps := map[int]bool{}
	for _, n := range g.SeqApps {
		if n < 1 {
			return fmt.Errorf("sweep: sequence length must be >= 1, got %d", n)
		}
		if seenApps[n] {
			return fmt.Errorf("sweep: duplicate sequence length %d", n)
		}
		seenApps[n] = true
	}
	seenReeval := map[time.Duration]bool{}
	for _, rv := range g.Reevals {
		if rv < 0 {
			return fmt.Errorf("sweep: re-evaluation period must be >= 0 (0 = never), got %v", rv)
		}
		if seenReeval[rv] {
			return fmt.Errorf("sweep: duplicate re-evaluation period %v", rv)
		}
		seenReeval[rv] = true
	}
	if g.MigrationGain < 0 || g.MigrationGain >= 1 {
		return fmt.Errorf("sweep: migration gain must be in [0, 1) (0 = the default 0.2), got %v", g.MigrationGain)
	}
	if g.MaxMigrations < 0 {
		return fmt.Errorf("sweep: migration cap must be >= 0, got %d", g.MaxMigrations)
	}
	if g.Apps != 0 {
		return fmt.Errorf("sweep: the Apps knob combines applications in snapshot mode; sequence length is the SeqApps dimension")
	}
	for _, a := range g.Algorithms {
		if a.ILP {
			return fmt.Errorf("sweep: algorithm %q is snapshot-only (sequence mode places arrivals with the core algorithms)", a.Name)
		}
	}
	for _, w := range g.Workloads {
		if w.Trace != nil {
			return fmt.Errorf("sweep: workload %q is snapshot-only (sequence mode generates Poisson arrival sequences; trace replay is an open ROADMAP rung)", w.Name)
		}
	}
	return nil
}

// Scenario is one expanded grid cell.
type Scenario struct {
	// Index is the cell's position in expansion order; results land at
	// this index regardless of which worker runs the cell.
	Index     int
	Topology  Topology
	Workload  Workload
	Algorithm Algorithm
	Seed      int64
	// VMs and MeanBytes are the swept allocation size and mean transfer
	// size of this cell.
	VMs       int
	MeanBytes units.ByteSize
	// Interarrival, SeqApps and Reeval are the swept arrival-process
	// and migration-policy coordinates of a sequence cell; all zero for
	// snapshot cells.
	Interarrival time.Duration
	SeqApps      int
	Reeval       time.Duration
}

// traceSizes is the transfer-size dimension for trace workloads: traces
// replay recorded transfers, so sweeping the generator's mean size would
// only duplicate identical cells. The single zero entry keeps the cell
// honest (meanBytes 0 = not applicable) and the cloud seed stable.
var traceSizes = []units.ByteSize{0}

// Expand enumerates the cross product in a fixed order: topology,
// workload, VM count, transfer size, interarrival, sequence length,
// re-evaluation period, algorithm, seed — the outermost dimension
// varying slowest. Snapshot grids collapse the three sequence
// dimensions to single zero placeholders, reducing to the original
// six-dimension order. Trace workloads skip the transfer-size dimension
// (see traceSizes).
func (g *Grid) Expand() ([]Scenario, error) {
	g.applyDefaults()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	inters, seqApps, reevals := []time.Duration{0}, []int{0}, []time.Duration{0}
	if g.Mode == Sequence {
		inters, seqApps, reevals = g.Interarrivals, g.SeqApps, g.Reevals
	}
	var out []Scenario
	for _, tp := range g.Topologies {
		for _, wl := range g.Workloads {
			sizes := g.MeanSizes
			if wl.Trace != nil {
				sizes = traceSizes
			}
			for _, vms := range g.VMCounts {
				for _, size := range sizes {
					for _, inter := range inters {
						for _, apps := range seqApps {
							for _, reeval := range reevals {
								for _, alg := range g.Algorithms {
									for _, seed := range g.Seeds {
										out = append(out, Scenario{
											Index:        len(out),
											Topology:     tp,
											Workload:     wl,
											Algorithm:    alg,
											Seed:         seed,
											VMs:          vms,
											MeanBytes:    size,
											Interarrival: inter,
											SeqApps:      apps,
											Reeval:       reeval,
										})
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return out, nil
}

// cloudSeed derives the deterministic per-cell seed. It covers every cell
// coordinate (topology, workload, VM count, transfer size, grid seed)
// but not the algorithm, so every algorithm in a cell group faces the
// identical cloud and application — the comparison the paper's Figure 10
// makes.
func (sc Scenario) cloudSeed() int64 {
	const offset64, prime64 = 1469598103934665603, 1099511628211
	h := uint64(offset64)
	mixByte := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			mixByte(s[i])
		}
		mixByte(0xff) // separator so "ab"+"c" != "a"+"bc"
	}
	mixInt := func(v int64) {
		// Fold in bytewise for the same avalanche behaviour.
		for i := 0; i < 8; i++ {
			mixByte(byte(v >> (8 * i)))
		}
	}
	mix(sc.Topology.Name)
	mix(sc.Workload.Name)
	mixInt(int64(sc.VMs))
	mixInt(int64(sc.MeanBytes))
	mixInt(sc.Seed)
	// The sequence coordinates (interarrival, sequence length,
	// re-evaluation period) are deliberately not mixed in — and not only
	// to keep every snapshot cell's seed (and hence the golden reports)
	// stable. Sequence cells that differ only in those coordinates share
	// one cloud, and GenerateSequence draws the identical applications
	// for any interarrival mean, so sweeping the arrival or migration
	// dimensions is a same-cloud, same-applications comparison — the
	// §6.3 analogue of every algorithm in a cell group facing the
	// identical cloud. The cells remain distinct in the environment
	// cache, whose Key carries the sequence coordinates explicitly.
	// Keep it positive and well away from zero for rand.NewSource.
	return int64(h&0x7fffffffffffffff) | 1
}

// sortedAlgorithmNames returns the distinct algorithm names in grid
// order (the order aggregates are reported in).
func (g *Grid) algorithmNames() []string {
	var names []string
	seen := map[string]bool{}
	for _, a := range g.Algorithms {
		if !seen[a.Name] {
			seen[a.Name] = true
			names = append(names, a.Name)
		}
	}
	return names
}

// ParseSeeds expands a CLI seed spec: either a count ("4" = seeds
// 1..4 from base) or an explicit comma list ("3,7,11").
func ParseSeeds(spec string, base int64) ([]int64, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, fmt.Errorf("sweep: empty seed spec")
	}
	if !strings.Contains(spec, ",") {
		n, err := strconv.Atoi(spec)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("sweep: seed spec %q is neither a count nor a comma list", spec)
		}
		seeds := make([]int64, n)
		for i := range seeds {
			seeds[i] = base + int64(i)
		}
		return seeds, nil
	}
	var seeds []int64
	for _, part := range strings.Split(spec, ",") {
		s, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sweep: bad seed %q in %q", part, spec)
		}
		seeds = append(seeds, s)
	}
	sort.Slice(seeds, func(i, j int) bool { return seeds[i] < seeds[j] })
	return seeds, nil
}
