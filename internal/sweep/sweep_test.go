package sweep

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"

	"choreo/internal/profile"
	"choreo/internal/units"
	"choreo/internal/workload"
)

func TestExpandOrderAndCount(t *testing.T) {
	g := Default()
	scenarios, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	want := len(g.Topologies) * len(g.Workloads) * len(g.VMCounts) * len(g.MeanSizes) *
		len(g.Algorithms) * len(g.Seeds)
	if want < 24 {
		t.Fatalf("default grid has %d scenarios, want >= 24", want)
	}
	if len(g.VMCounts) < 2 || len(g.MeanSizes) < 2 {
		t.Fatalf("default grid should sweep >= 2 VM counts and >= 2 transfer sizes, got %v / %v",
			g.VMCounts, g.MeanSizes)
	}
	if len(scenarios) != want {
		t.Fatalf("expanded %d scenarios, want %d", len(scenarios), want)
	}
	for i, sc := range scenarios {
		if sc.Index != i {
			t.Fatalf("scenario %d carries index %d", i, sc.Index)
		}
	}
	// Seed varies fastest, topology slowest.
	if scenarios[0].Seed == scenarios[1].Seed {
		t.Errorf("seed should vary fastest: %+v %+v", scenarios[0], scenarios[1])
	}
	if scenarios[0].Topology.Name != scenarios[1].Topology.Name {
		t.Errorf("topology should vary slowest")
	}
	last := scenarios[len(scenarios)-1]
	if last.Topology.Name != g.Topologies[len(g.Topologies)-1].Name {
		t.Errorf("last scenario topology = %q, want %q", last.Topology.Name, g.Topologies[len(g.Topologies)-1].Name)
	}
}

func TestExpandValidates(t *testing.T) {
	cases := []func(*Grid){
		func(g *Grid) { g.Topologies = nil },
		func(g *Grid) { g.Workloads = nil },
		func(g *Grid) { g.Algorithms = nil },
		func(g *Grid) { g.Seeds = nil },
		func(g *Grid) { g.VMCounts = []int{1} },
		func(g *Grid) { g.MeanSizes = []units.ByteSize{0} },
		func(g *Grid) { g.MinTasks = 5; g.MaxTasks = 3 },
		func(g *Grid) { g.Workloads = append(g.Workloads, g.Workloads[0]) },
		// Duplicate topologies/algorithms would make scenario identities
		// ambiguous (shard merge and resume match results by identity).
		func(g *Grid) { g.Topologies = append(g.Topologies, g.Topologies[0]) },
		func(g *Grid) { g.Algorithms = append(g.Algorithms, g.Algorithms[0]) },
		func(g *Grid) { g.Seeds = []int64{1, 1} },
		func(g *Grid) { g.VMCounts = []int{8, 8} },
		func(g *Grid) { g.MeanSizes = []units.ByteSize{64, 64} },
	}
	for i, mutate := range cases {
		g := Default()
		mutate(&g)
		if _, err := g.Expand(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestCloudSeedDependsOnCellNotAlgorithm(t *testing.T) {
	base := Scenario{Topology: Topology{Name: "ec2-2013"}, Workload: Workload{Name: "shuffle"}, Seed: 1}
	other := base
	otherAlg, _ := AlgorithmByName("random")
	other.Algorithm = otherAlg
	if base.cloudSeed() != other.cloudSeed() {
		t.Error("cloud seed must not depend on the algorithm")
	}
	diffSeed := base
	diffSeed.Seed = 2
	if base.cloudSeed() == diffSeed.cloudSeed() {
		t.Error("cloud seed must depend on the grid seed")
	}
	diffTopo := base
	diffTopo.Topology.Name = "rackspace"
	if base.cloudSeed() == diffTopo.cloudSeed() {
		t.Error("cloud seed must depend on the topology")
	}
	diffWl := base
	diffWl.Workload.Name = "uniform"
	if base.cloudSeed() == diffWl.cloudSeed() {
		t.Error("cloud seed must depend on the workload")
	}
	diffVMs := base
	diffVMs.VMs = base.VMs + 2
	if base.cloudSeed() == diffVMs.cloudSeed() {
		t.Error("cloud seed must depend on the VM count")
	}
	diffSize := base
	diffSize.MeanBytes = base.MeanBytes + 1
	if base.cloudSeed() == diffSize.cloudSeed() {
		t.Error("cloud seed must depend on the mean transfer size")
	}
}

func TestByNameErrors(t *testing.T) {
	if _, err := TopologyByName("nope"); err == nil || !strings.Contains(err.Error(), "ec2-2013") {
		t.Errorf("TopologyByName should list valid names, got %v", err)
	}
	// Parameterized profiles must reject shapes their builders cannot
	// produce at name-resolution time, not mid-sweep.
	for _, bad := range []string{"fattree-3", "fattree-0", "jellyfish-3", "jellyfish-1"} {
		if _, err := TopologyByName(bad); err == nil {
			t.Errorf("TopologyByName(%q) should fail", bad)
		}
	}
	for _, good := range []string{"fattree", "fattree-6", "jellyfish", "jellyfish-4"} {
		if _, err := TopologyByName(good); err != nil {
			t.Errorf("TopologyByName(%q): %v", good, err)
		}
	}
	if _, err := WorkloadByName("nope"); err == nil || !strings.Contains(err.Error(), "shuffle") {
		t.Errorf("WorkloadByName should list valid names, got %v", err)
	}
	if _, err := AlgorithmByName("nope"); err == nil || !strings.Contains(err.Error(), "round-robin") {
		t.Errorf("AlgorithmByName should list valid names, got %v", err)
	}
	for _, name := range TopologyNames() {
		if _, err := TopologyByName(name); err != nil {
			t.Errorf("TopologyByName(%q): %v", name, err)
		}
	}
	for _, name := range WorkloadNames() {
		if _, err := WorkloadByName(name); err != nil {
			t.Errorf("WorkloadByName(%q): %v", name, err)
		}
	}
	for _, name := range AlgorithmNames() {
		if _, err := AlgorithmByName(name); err != nil {
			t.Errorf("AlgorithmByName(%q): %v", name, err)
		}
	}
}

func TestParseSeeds(t *testing.T) {
	seeds, err := ParseSeeds("3", 10)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(seeds) != "[10 11 12]" {
		t.Errorf("count spec: got %v", seeds)
	}
	seeds, err = ParseSeeds("7, 3,11", 0)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(seeds) != "[3 7 11]" {
		t.Errorf("list spec: got %v", seeds)
	}
	for _, bad := range []string{"", "x", "0", "-2", "1,x", "4x8", "1,2O"} {
		if _, err := ParseSeeds(bad, 1); err == nil {
			t.Errorf("ParseSeeds(%q) should fail", bad)
		}
	}
}

func TestParallelCoversAllIndicesAnyWorkerCount(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16, 100} {
		var calls [37]int32
		err := Parallel(len(calls), workers, func(i int) error {
			atomic.AddInt32(&calls[i], 1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range calls {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestParallelReturnsSmallestIndexError(t *testing.T) {
	wantErr := errors.New("boom-5")
	err := Parallel(20, 8, func(i int) error {
		switch i {
		case 5:
			return wantErr
		case 11:
			return errors.New("boom-11")
		}
		return nil
	})
	if err != wantErr {
		t.Errorf("got %v, want the smallest-index error", err)
	}
	if err := Parallel(0, 4, func(int) error { return errors.New("never") }); err != nil {
		t.Errorf("empty Parallel returned %v", err)
	}
}

func TestTraceWorkloadRoundTrip(t *testing.T) {
	g := tinyGrid()
	g.Apps = 0 // whole trace
	g.VMs = 8  // headroom for both replayed applications' CPU demands

	// Record a tiny trace from the generator, then sweep over it.
	cfg := workload.Config{MinTasks: 3, MaxTasks: 4, MeanBytes: 10 * 1 << 20}
	rng := rand.New(rand.NewSource(99))
	var apps []*profile.Application
	for i := 0; i < 2; i++ {
		app, err := workload.Generate(rng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		apps = append(apps, app)
	}
	tr, err := workload.NewTrace("unit", apps)
	if err != nil {
		t.Fatal(err)
	}
	g.Workloads = []Workload{TraceWorkload(tr)}
	if !strings.HasPrefix(g.Workloads[0].Name, "trace:") {
		t.Fatalf("trace workload name = %q", g.Workloads[0].Name)
	}
	// Traces replay recorded transfers: the swept transfer-size dimension
	// must not multiply (or perturb) their cells.
	g.MeanSizes = []units.ByteSize{8 * units.Megabyte, 32 * units.Megabyte}
	rep, err := Run(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Scenarios) != 1 {
		t.Fatalf("trace workload crossed the size dimension: %d scenarios, want 1", len(rep.Scenarios))
	}
	wantTasks := 0
	for _, app := range apps {
		wantTasks += app.Tasks()
	}
	for _, s := range rep.Scenarios {
		if !strings.HasPrefix(s.Workload, "trace:") {
			t.Errorf("scenario workload = %q", s.Workload)
		}
		if s.MeanBytes != 0 {
			t.Errorf("trace scenario reports meanBytes %d, want 0 (not applicable)", s.MeanBytes)
		}
		if s.Tasks != wantTasks {
			t.Errorf("Apps=0 should replay the whole trace: %d tasks, want %d", s.Tasks, wantTasks)
		}
	}
}

// tinyGrid is the cheapest runnable grid, shared by runtime tests.
func tinyGrid() Grid {
	g := Grid{
		Seeds:    []int64{1},
		VMs:      4,
		MinTasks: 3,
		MaxTasks: 4,
	}
	tp, _ := TopologyByName("tworack")
	g.Topologies = []Topology{tp}
	wl, _ := WorkloadByName("skewed")
	g.Workloads = []Workload{wl}
	alg, _ := AlgorithmByName("choreo")
	g.Algorithms = []Algorithm{alg}
	return g
}
