package sweep

import (
	"encoding/json"
	"fmt"
	"io"
)

// StreamWriter renders a sweep as JSON lines, incrementally: one header
// line echoing the grid, one compact line per scenario result in
// expansion order, and one final aggregates line. Results are written
// as they stream in rather than collected, so a 100k-scenario sweep
// retains only its aggregate series in memory — and the bytes are
// identical for a given grid regardless of worker count or cache state.
//
//	{"grid":{...}}
//	{"topology":"ec2-2013","workload":"shuffle",...}
//	...
//	{"algorithms":[{...},...]}
//
// Wire it to RunStream:
//
//	sw := sweep.NewStreamWriter(f)
//	hdr, err := g.Summary()
//	err = sw.Header(hdr)
//	sum, err := sweep.RunStream(g, sweep.RunOptions{Emit: sw.Result})
//	if err == nil {
//	    err = sw.Finish(sum.Algorithms)
//	}
type StreamWriter struct {
	w        io.Writer
	wroteHdr bool
}

// NewStreamWriter wraps w; nothing is written until Header.
func NewStreamWriter(w io.Writer) *StreamWriter {
	return &StreamWriter{w: w}
}

// Header writes the grid-echo line (see Grid.Summary).
func (sw *StreamWriter) Header(grid GridSummary) error {
	if sw.wroteHdr {
		return fmt.Errorf("sweep: stream header written twice")
	}
	sw.wroteHdr = true
	return sw.writeLine(struct {
		Grid GridSummary `json:"grid"`
	}{grid})
}

// Result writes one scenario line. Pass it as RunOptions.Emit; RunStream
// guarantees expansion order.
func (sw *StreamWriter) Result(r Result) error {
	return sw.writeLine(r)
}

// WriteLine writes one arbitrary value as a compact JSON line. Derived
// stream formats (the shard files of internal/sweep/shard) use it to
// interleave their own marker lines with the standard header, result
// and aggregates lines, so every line of every format goes through the
// identical encoding.
func (sw *StreamWriter) WriteLine(v interface{}) error {
	return sw.writeLine(v)
}

// Finish writes the final aggregates line.
func (sw *StreamWriter) Finish(algorithms []Aggregate) error {
	return sw.writeLine(struct {
		Algorithms []Aggregate `json:"algorithms"`
	}{algorithms})
}

func (sw *StreamWriter) writeLine(v interface{}) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = sw.w.Write(b)
	return err
}
